// Package analysis implements flow-based static analyses over the lowered
// IR: an interprocedural event-flow analysis predicting unhandled-event
// errors, a machine communication graph with queue-boundedness checks, and
// dead-transition detection. The abstractions follow the event-set style of
// Ganty & Majumdar's analyses for asynchronous programs: sets of events
// stand in for queue contents, and machine types stand in for machine
// identities, so every result is an over-approximation of the dynamic
// semantics explored by the model checker.
//
// Findings carry stable diagnostic codes (P1xx event-flow, P2xx dead code,
// P3xx communication structure) and one of three severities. Error-severity
// findings are statically certain: the defect manifests on every run that
// reaches the flagged code, and the pverify cross-check test holds each one
// to that standard against a model-checking counterexample.
package analysis

import (
	"fmt"
	"sort"

	"pgo/internal/ir"
	"pgo/internal/source"
)

// Severity ranks findings. Error findings are statically certain defects;
// warnings are likely defects that may depend on timing or unreachable
// configurations; info findings describe structure worth reviewing.
type Severity int

const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarn:
		return "warning"
	default:
		return "info"
	}
}

// Diagnostic codes of the analysis passes. Codes are part of the tool
// interface and are never renumbered; the P0xx block belongs to the
// frontend (see internal/types).
const (
	// CodeCertainUnhandled: an event is definitely sent to a machine type
	// that handles or defers it in no reachable state.
	CodeCertainUnhandled = "P101"
	// CodePossiblyUnhandled: a spontaneous event can arrive while the
	// machine rests in a state that neither handles nor defers it.
	CodePossiblyUnhandled = "P102"
	// CodeUnhandledAmbiguous: like P101, but the send target is only
	// possibly the flagged machine type.
	CodeUnhandledAmbiguous = "P103"
	// CodeDeadTransition: a transition or action binding on an event that
	// can never be pending in the machine.
	CodeDeadTransition = "P201"
	// CodeCommCycle: machines form a send cycle (reviewable structure; the
	// static signature of feedback that can grow queues).
	CodeCommCycle = "P301"
	// CodeSendPump: a machine can cycle through states on raised events
	// alone — never dequeuing — while sending events with varying payloads
	// or creating machines, so receiver queues can grow without bound.
	CodeSendPump = "P302"
	// CodeDedupBoundedPump: a dequeue-free send cycle whose payloads are
	// constant, so the runtime's duplicate-dropping enqueue (⊕) keeps the
	// receiver queues bounded.
	CodeDedupBoundedPump = "P303"
	// CodeInfiniteSendLoop: a send or new inside a while(true) loop with no
	// escaping statement.
	CodeInfiniteSendLoop = "P304"
)

// Finding is one diagnostic produced by the analysis (or adopted from the
// frontend lint pass when merged by Run).
type Finding struct {
	Code     string
	Severity Severity
	Span     source.Span
	Machine  string // subject machine type, when one is identified
	State    string // subject state, when one is identified
	Event    string // subject event, when one is identified
	Message  string
}

func (f Finding) String() string {
	sev := fmt.Sprintf("%s[%s]", f.Severity, f.Code)
	if f.Span.IsValid() {
		return fmt.Sprintf("%s: %s: %s", f.Span.Start, sev, f.Message)
	}
	return fmt.Sprintf("%s: %s", sev, f.Message)
}

// Report is the result of analyzing one program.
type Report struct {
	Findings []Finding
	// Comm is the machine communication graph (also consumed by pdot).
	Comm *CommGraph
	// Pending[m][s] over-approximates the events that can be waiting in a
	// type-m machine's queue when it enters state s. Entries are the zero
	// set for unreachable machines and states.
	Pending [][]ir.EventSet
	// SendTargets maps an SSend statement's Index to the machine types its
	// target expression may reference (type-level points-to). Consumed by
	// internal/abstract to resolve sends whose target is not tracked
	// exactly. Only reachable send sites have entries.
	SendTargets map[int]SendTargetFact
}

// SendTargetFact is the points-to abstraction of one send statement's
// target expression.
type SendTargetFact struct {
	Types   []ir.MachineTypeID
	Unknown bool // target may escape the abstraction (foreign result)
}

// Count returns the number of findings at exactly severity sev.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == sev {
			n++
		}
	}
	return n
}

// HasErrors reports whether any finding is error-severity.
func (r *Report) HasErrors() bool { return r.Count(SevError) > 0 }

// Analyze runs every analysis pass over p (which must be an unerased
// program: ghost machines model the environment whose stimuli drive the
// event-flow abstraction).
func Analyze(p *ir.Program) *Report {
	f := newFacts(p)
	rep := &Report{Comm: f.commGraph(), Pending: f.pend}
	rep.SendTargets = make(map[int]SendTargetFact, len(f.sites))
	for _, site := range f.sites {
		fact := SendTargetFact{Unknown: site.tgt.unknown}
		for ti, ok := range site.tgt.types {
			if ok {
				fact.Types = append(fact.Types, ir.MachineTypeID(ti))
			}
		}
		rep.SendTargets[site.st.Index] = fact
	}
	rep.Findings = append(rep.Findings, f.eventFlowFindings()...)
	rep.Findings = append(rep.Findings, f.deadTransitionFindings()...)
	rep.Findings = append(rep.Findings, f.boundednessFindings(rep.Comm)...)
	SortFindings(rep.Findings)
	return rep
}

// SortFindings orders findings by position, then code, then subject, giving
// every tool and golden file the same deterministic order.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Span.Start != b.Span.Start {
			return a.Span.Start.Before(b.Span.Start)
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.State != b.State {
			return a.State < b.State
		}
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		return a.Message < b.Message
	})
}

package analysis

import "pgo/internal/ir"

// PORFacts is the static half of the checker's independence relation: a
// conservative summary of what a machine can still do — send which events
// to which types, create machines — from each of its control states onward.
// The explorers combine it with dynamic per-state information (held machine
// ids, frame stacks, actual macro-step outcomes) to decide when a single
// machine's step commutes with everything the rest of the system can do.
// Over-approximation is always safe here — an extra edge only costs
// reduction, never soundness.
//
// The facts are per control state rather than whole-machine because ghost
// environments front-load their effects: a machine that creates the world
// in its boot state and then settles into a request loop would otherwise
// count as "can create" forever, blocking reduction everywhere. A running
// machine's remaining capabilities are the union of the facts at its frame
// states: a pop lands exactly on a lower frame's state, so unioning over
// the stack covers every return path without static pop edges.
type PORFacts struct {
	// SendEventsFrom[m][s][t] is the set of events machine type m, at
	// control state s or anywhere reachable from it (goto and call edges),
	// may send to an instance of machine type t. Send sites whose target
	// points-to set is unknown splash into every type.
	SendEventsFrom [][][]ir.EventSet
	// CreatesFrom[m][s] reports whether code reachable from state s of
	// machine type m contains a `new` statement (of any type).
	CreatesFrom [][]bool
	// SpawnsFrom[m][s] lists the machine types that code reachable from
	// state s of machine type m can instantiate directly.
	SpawnsFrom [][][]ir.MachineTypeID
	// InitState[m] is m's initial control state — the capabilities of a
	// freshly created instance are the facts at InitState.
	InitState []ir.StateID
}

// PORIndependence computes the static send/create summaries backing
// partial-order reduction. It reuses the analysis pipeline's reachability
// and points-to facts, so dead machines and dead states contribute nothing.
func PORIndependence(p *ir.Program) *PORFacts {
	f := newFacts(p)
	nm := len(p.Machines)
	pf := &PORFacts{
		SendEventsFrom: make([][][]ir.EventSet, nm),
		CreatesFrom:    make([][]bool, nm),
		SpawnsFrom:     make([][][]ir.MachineTypeID, nm),
		InitState:      make([]ir.StateID, nm),
	}
	for mi, mf := range f.mf {
		m := mf.m
		ns := len(m.States)
		pf.InitState[mi] = m.Init
		pf.SendEventsFrom[mi] = make([][]ir.EventSet, ns)
		pf.CreatesFrom[mi] = make([]bool, ns)
		pf.SpawnsFrom[mi] = make([][]ir.MachineTypeID, ns)
		for s := range m.States {
			pf.SendEventsFrom[mi][s] = make([]ir.EventSet, nm)
		}

		// Direct facts per owner state: what the containers a state can
		// execute do themselves. Unreachable machines keep empty facts —
		// no instance of them can exist.
		directSend := make([][]ir.EventSet, ns)
		directNew := make([][]bool, ns)
		for s := range m.States {
			directSend[s] = make([]ir.EventSet, nm)
			directNew[s] = make([]bool, nm)
		}
		if mf.reach {
			for _, site := range f.sites {
				if site.from != ir.MachineTypeID(mi) {
					continue
				}
				for _, o := range site.cont.owners {
					for ti := range p.Machines {
						if site.tgt.types[ti] || site.tgt.unknown {
							directSend[o][ti].Add(site.st.Event)
						}
					}
				}
			}
			for _, c := range mf.conts {
				if !mf.reachableOwner(c) {
					continue
				}
				walkStmts(c.body, func(s *ir.Stmt) {
					if s.Op == ir.SNew {
						for _, o := range c.owners {
							directNew[o][s.Machine] = true
						}
					}
				})
			}
		}

		// Precompute each state's call-edge targets once. The per-state
		// reachability sweeps below would otherwise rescan every
		// container's owner list and re-walk its body for every start
		// state — quadratic in control states, and the dominant cost of
		// this pass on machines with many states (the USB device model).
		callEdges := make([][]ir.StateID, ns)
		for _, c := range mf.conts {
			var tgts []ir.StateID
			walkStmts(c.body, func(stm *ir.Stmt) {
				if stm.Op == ir.SCallState {
					tgts = append(tgts, stm.State)
				}
			})
			if len(tgts) == 0 {
				continue
			}
			for _, o := range c.owners {
				callEdges[o] = append(callEdges[o], tgts...)
			}
		}

		// Per-state forward reachability over goto and call edges. Pops
		// need no edges: at runtime a pop returns to a lower frame, and
		// the reducer unions facts over every frame state.
		for s0 := range m.States {
			r := make([]bool, ns)
			work := []ir.StateID{ir.StateID(s0)}
			r[s0] = true
			visit := func(t ir.StateID) {
				if !r[t] {
					r[t] = true
					work = append(work, t)
				}
			}
			for len(work) > 0 {
				cur := work[len(work)-1]
				work = work[:len(work)-1]
				for _, tr := range m.States[cur].Trans {
					if tr.Kind != ir.TransNone {
						visit(tr.Target)
					}
				}
				for _, t := range callEdges[cur] {
					visit(t)
				}
			}
			spawned := make([]bool, nm)
			for s := range m.States {
				if !r[s] {
					continue
				}
				for ti := range p.Machines {
					pf.SendEventsFrom[mi][s0][ti] = pf.SendEventsFrom[mi][s0][ti].Union(directSend[s][ti])
				}
				for ti, ok := range directNew[s] {
					if ok {
						pf.CreatesFrom[mi][s0] = true
						spawned[ti] = true
					}
				}
			}
			for ti, ok := range spawned {
				if ok {
					pf.SpawnsFrom[mi][s0] = append(pf.SpawnsFrom[mi][s0], ir.MachineTypeID(ti))
				}
			}
		}
	}
	return pf
}

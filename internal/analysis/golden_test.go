package analysis_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pgo/internal/analysis"
	"pgo/internal/psamples"
)

var update = flag.Bool("update", false, "rewrite golden files")

// corpus returns every analyzable program: the embedded samples plus the
// seeded-defect programs under testdata. The map goes from report name to
// source text.
func corpus(t *testing.T) map[string]string {
	t.Helper()
	progs := map[string]string{}
	for _, s := range psamples.All() {
		progs[s.Name] = s.Source
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs found")
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		progs[strings.TrimSuffix(filepath.Base(f), ".p")] = string(src)
	}
	return progs
}

func sortedNames(progs map[string]string) []string {
	var names []string
	for n := range progs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Golden plint -json reports for every sample and every seeded-defect
// program: any change to the analyses, their messages, or the report schema
// shows up as a readable diff.
// Regenerate with: go test ./internal/analysis -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	progs := corpus(t)
	for _, name := range sortedNames(progs) {
		name := name
		t.Run(name, func(t *testing.T) {
			findings, _, err := analysis.Run(name, progs[name])
			if err != nil {
				t.Fatalf("analysis failed: %v", err)
			}
			var buf bytes.Buffer
			if err := analysis.WriteJSON(&buf, name, findings); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (run with -update): %v", path, err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Fatalf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s", path, want, buf.Bytes())
			}
		})
	}
}

// Every shipped sample must be free of error-severity findings: the
// analyses may warn about a sample's quirks but must not condemn working
// programs.
func TestSamplesHaveNoErrors(t *testing.T) {
	for _, s := range psamples.All() {
		findings, _, err := analysis.Run(s.Name, s.Source)
		if err != nil {
			t.Fatalf("%s: analysis failed: %v", s.Name, err)
		}
		for _, f := range findings {
			if f.Severity == analysis.SevError {
				t.Errorf("%s: unexpected error finding: %s", s.Name, f)
			}
		}
	}
}

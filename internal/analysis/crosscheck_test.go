package analysis_test

import (
	"testing"

	"pgo/internal/analysis"
	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/core"
)

// Soundness cross-check for the analysis's only error-severity prediction:
// every P101 (certain unhandled event) over the whole corpus must be
// confirmed by an actual unhandled-event counterexample from the bounded
// exploration — same machine type, same event. The seeded
// unreachable_handler program keeps the check non-vacuous.
func TestCertainUnhandledConfirmedByExploration(t *testing.T) {
	progs := corpus(t)
	confirmed := 0
	for _, name := range sortedNames(progs) {
		src := progs[name]
		findings, _, err := analysis.Run(name, src)
		if err != nil {
			t.Fatalf("%s: analysis failed: %v", name, err)
		}
		var certain []analysis.Finding
		for _, f := range findings {
			if f.Code == analysis.CodeCertainUnhandled {
				certain = append(certain, f)
			}
		}
		if len(certain) == 0 {
			continue
		}
		prog, diags, err := compile.Source(name, src)
		if err != nil {
			t.Fatalf("%s: compile failed: %v\n%s", name, err, diags.String())
		}
		res, err := check.Explore(prog, check.Options{
			Mode:      check.DelayBounded,
			Bound:     2,
			MaxStates: 200_000,
		})
		if err != nil {
			t.Fatalf("%s: explore failed: %v", name, err)
		}
		for _, f := range certain {
			found := false
			for _, v := range res.Violations {
				if v.Err.Kind == core.ErrUnhandled && v.Err.Type == f.Machine &&
					v.Err.HasEv && prog.Events[v.Err.Event].Name == f.Event {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: P101 predicts unhandled %s in machine %s, but exploration produced no such counterexample",
					name, f.Event, f.Machine)
				continue
			}
			confirmed++
		}
	}
	if confirmed == 0 {
		t.Fatal("no P101 finding in the corpus: the cross-check is vacuous")
	}
}

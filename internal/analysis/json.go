package analysis

import (
	"encoding/json"
	"io"
)

// JSONFinding is the machine-readable form of a Finding, shared by
// plint -json, pverify -json, and the golden-file tests.
type JSONFinding struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Pos      string `json:"pos,omitempty"`
	Machine  string `json:"machine,omitempty"`
	State    string `json:"state,omitempty"`
	Event    string `json:"event,omitempty"`
	Message  string `json:"message"`
}

// JSONReport is the top-level document emitted by plint -json.
type JSONReport struct {
	Program  string        `json:"program"`
	Findings []JSONFinding `json:"findings"`
	Errors   int           `json:"errors"`
	Warnings int           `json:"warnings"`
	Infos    int           `json:"infos"`
	OK       bool          `json:"ok"` // no error-severity findings
}

// FindingsJSON converts findings to their wire form.
func FindingsJSON(fs []Finding) []JSONFinding {
	out := make([]JSONFinding, 0, len(fs))
	for _, f := range fs {
		jf := JSONFinding{
			Code:     f.Code,
			Severity: f.Severity.String(),
			Machine:  f.Machine,
			State:    f.State,
			Event:    f.Event,
			Message:  f.Message,
		}
		if f.Span.IsValid() {
			jf.Pos = f.Span.Start.String()
		}
		out = append(out, jf)
	}
	return out
}

// BuildJSONReport assembles the plint -json document for one program.
func BuildJSONReport(program string, fs []Finding) JSONReport {
	rep := JSONReport{Program: program, Findings: FindingsJSON(fs)}
	for _, f := range fs {
		switch f.Severity {
		case SevError:
			rep.Errors++
		case SevWarn:
			rep.Warnings++
		default:
			rep.Infos++
		}
	}
	rep.OK = rep.Errors == 0
	return rep
}

// WriteJSON encodes the report for program with indented, trailing-newline
// output suitable for golden files.
func WriteJSON(w io.Writer, program string, fs []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSONReport(program, fs))
}

package analysis

import (
	"pgo/internal/ir"
)

// tokens is a trigger set: the events whose handling can be in progress when
// a piece of code executes, plus two distinguished tokens — Startup (the
// code can run during machine initialization, before any event arrived) and
// Unknown (the context could not be resolved statically).
type tokens struct {
	ev      ir.EventSet
	startup bool
	unknown bool
}

func (t *tokens) addEvent(e ir.EventID) bool {
	if t.ev.Contains(e) {
		return false
	}
	t.ev.Add(e)
	return true
}

func (t *tokens) merge(o *tokens) bool {
	changed := false
	for _, e := range o.ev.Events() {
		if t.addEvent(e) {
			changed = true
		}
	}
	if o.startup && !t.startup {
		t.startup = true
		changed = true
	}
	if o.unknown && !t.unknown {
		t.unknown = true
		changed = true
	}
	return changed
}

// correlatedWith reports whether every context that reaches this code is the
// handling of an event drawn from set — i.e. the code only ever runs as a
// response to one of those events. Startup or Unknown contexts break the
// correlation.
func (t *tokens) correlatedWith(set ir.EventSet) bool {
	if t.startup || t.unknown {
		return false
	}
	for _, e := range t.ev.Events() {
		if !set.Contains(e) {
			return false
		}
	}
	return true
}

// pts is a type-level points-to set for id-typed values: the machine types a
// value may reference. unknown marks values that escape the abstraction
// (foreign-call results).
type pts struct {
	types   []bool
	unknown bool
}

func newPts(n int) *pts { return &pts{types: make([]bool, n)} }

func (p *pts) add(t ir.MachineTypeID) bool {
	if p.types[t] {
		return false
	}
	p.types[t] = true
	return true
}

func (p *pts) addUnknown() bool {
	if p.unknown {
		return false
	}
	p.unknown = true
	return true
}

func (p *pts) merge(o *pts) bool {
	changed := false
	for i, b := range o.types {
		if b && !p.types[i] {
			p.types[i] = true
			changed = true
		}
	}
	if o.unknown && !p.unknown {
		p.unknown = true
		changed = true
	}
	return changed
}

// single returns the unique machine type the value can reference, if the set
// is a definite singleton.
func (p *pts) single() (ir.MachineTypeID, bool) {
	if p.unknown {
		return 0, false
	}
	found := ir.MachineTypeID(-1)
	for i, b := range p.types {
		if !b {
			continue
		}
		if found >= 0 {
			return 0, false
		}
		found = ir.MachineTypeID(i)
	}
	if found < 0 {
		return 0, false
	}
	return found, true
}

// ckind distinguishes the code containers of a machine.
type ckind uint8

const (
	cEntry ckind = iota
	cExit
	cAction
	cModel
)

// container is one straight-line code body of a machine (a state's entry or
// exit block, an action body, or a foreign-function model), together with
// the states whose execution can run it and its computed trigger set.
type container struct {
	kind   ckind
	state  ir.StateID // cEntry / cExit
	act    ir.ActionID
	fn     ir.ForeignID
	body   []*ir.Stmt
	owners []ir.StateID // states that can execute this code
	trig   tokens
}

// machFacts holds the per-machine analysis facts.
type machFacts struct {
	id      ir.MachineTypeID
	m       *ir.Machine
	reach   bool
	stReach []bool

	conts   []*container
	entryOf []int // StateID -> container index
	exitOf  []int
	actOf   []int // ActionID -> container index
	modelOf []int // ForeignID -> container index, -1 when the foreign has no model

	raised ir.EventSet // events raised anywhere in the machine

	// raiseAdj connects states whose entry raises an event to the step or
	// call target the raise drives them to — movement that costs no dequeue.
	// raiseCycle marks states on a cycle of such edges: code they own can
	// re-execute without the machine ever returning to its queue.
	raiseAdj   [][]int
	raiseCycle []bool

	// bottom[s] reports that s can be the state of a frame with nothing
	// below it on the call stack (it is step-reachable from Init), so an
	// event uncovered by s pops to an empty stack.
	bottom []bool
	// ancestors[s] lists the states that can sit directly below s's frame:
	// the states whose push (call transition or call statement) created the
	// frame s lives in.
	ancestors [][]ir.StateID

	cov     [][]bool // [state][event]: trans, action, or defer in the state itself
	effCov  [][]bool // cov plus coverage inherited from every possible caller chain
	mayRest []bool   // entry code can complete, leaving the machine ready to dequeue
}

// sendSite is one SSend statement in a reachable machine.
type sendSite struct {
	from   ir.MachineTypeID
	cont   *container
	st     *ir.Stmt
	tgt    *pts
	inLoop bool // lexically inside a while loop
}

// facts bundles every computed abstraction over one program.
type facts struct {
	p  *ir.Program
	mf []*machFacts

	varPts     [][]*pts
	payloadPts []*pts

	sites   []*sendSite
	inbox   []ir.EventSet   // [machine] events some reachable site may send to it
	sendsTo [][]ir.EventSet // [from][to] events from may send to to
	// definiteAt[m][e] is a send site whose target resolves to exactly {m},
	// nil when no such site exists.
	definiteAt [][]*sendSite
	firstAt    [][]*sendSite // first (possibly ambiguous) site per (m, e)
	sentAny    ir.EventSet   // events with at least one reachable send site
	raisedAny  ir.EventSet   // events raised in at least one reachable machine

	// pdVar[m][v] marks id variables of m whose value only ever comes from
	// m's own event payloads (or null): ids the peer mailed in. A send whose
	// target is payload-derived answers a specific correspondent.
	pdVar [][]bool

	multi []bool        // machine type can have several live instances
	spont []ir.EventSet // inbox events that can arrive unprovoked
	// spontRe narrows spont to events with a recurring unprovoked source; the
	// rest arrive at most during the sender's one startup burst, and onceAt
	// records the receiver states such a burst can still find it in.
	spontRe []ir.EventSet
	onceAt  []map[ir.EventID][]bool

	pend [][]ir.EventSet // [machine][state] over-approximate pending-on-entry
}

func newFacts(p *ir.Program) *facts {
	f := &facts{p: p}
	f.buildContainers()
	f.machineReachability()
	f.stateReachability()
	f.pointsTo()
	f.collectSites()
	f.payloadFlow()
	f.raiseCycles()
	f.frames()
	f.coverage()
	f.triggers()
	f.multiplicity()
	f.classify()
	f.resting()
	f.pending()
	return f
}

// ------------------------------------------------------------ construction

func (f *facts) buildContainers() {
	for mi, m := range f.p.Machines {
		mf := &machFacts{
			id:      ir.MachineTypeID(mi),
			m:       m,
			stReach: make([]bool, len(m.States)),
			entryOf: make([]int, len(m.States)),
			exitOf:  make([]int, len(m.States)),
			actOf:   make([]int, len(m.Actions)),
			modelOf: make([]int, len(m.Foreigns)),
		}
		for _, s := range m.States {
			mf.entryOf[s.ID] = len(mf.conts)
			mf.conts = append(mf.conts, &container{kind: cEntry, state: s.ID, body: s.Entry, owners: []ir.StateID{s.ID}})
			mf.exitOf[s.ID] = len(mf.conts)
			mf.conts = append(mf.conts, &container{kind: cExit, state: s.ID, body: s.Exit, owners: []ir.StateID{s.ID}})
		}
		for ai, a := range m.Actions {
			mf.actOf[ai] = len(mf.conts)
			var owners []ir.StateID
			for _, s := range m.States {
				for _, bound := range s.Action {
					if bound == ir.ActionID(ai) {
						owners = append(owners, s.ID)
						break
					}
				}
			}
			mf.conts = append(mf.conts, &container{kind: cAction, act: ir.ActionID(ai), body: a.Body, owners: owners})
		}
		for fi, fn := range m.Foreigns {
			if fn.Model == nil {
				mf.modelOf[fi] = -1
				continue
			}
			mf.modelOf[fi] = len(mf.conts)
			// Model owners are filled in by modelOwners once call sites are
			// known.
			mf.conts = append(mf.conts, &container{kind: cModel, fn: ir.ForeignID(fi), body: fn.Model})
		}
		f.mf = append(f.mf, mf)
	}
	f.modelOwners()
}

// modelOwners propagates container ownership into foreign-function models:
// a model can run on behalf of every state that owns a container calling it.
func (f *facts) modelOwners() {
	for _, mf := range f.mf {
		for changed := true; changed; {
			changed = false
			for _, c := range mf.conts {
				walkStmts(c.body, func(s *ir.Stmt) {
					for _, fi := range foreignCalls(s) {
						mi := mf.modelOf[fi]
						if mi < 0 {
							continue
						}
						mc := mf.conts[mi]
						for _, o := range c.owners {
							if !containsState(mc.owners, o) {
								mc.owners = append(mc.owners, o)
								changed = true
							}
						}
					}
				})
			}
		}
	}
}

func containsState(list []ir.StateID, s ir.StateID) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// walkStmts applies fn to every statement in body, recursing into if/while
// bodies (but not into foreign models — callers handle those explicitly).
func walkStmts(body []*ir.Stmt, fn func(*ir.Stmt)) {
	ir.WalkStmts(body, fn)
}

// foreignCalls returns the foreign functions invoked directly by s, either
// as a call statement or inside one of its expressions.
func foreignCalls(s *ir.Stmt) []ir.ForeignID {
	var out []ir.ForeignID
	if s.Op == ir.SForeign {
		out = append(out, s.Foreign)
	}
	var walkExpr func(e *ir.Expr)
	walkExpr = func(e *ir.Expr) {
		if e == nil {
			return
		}
		if e.Op == ir.ECall {
			out = append(out, e.ForeignFn)
		}
		walkExpr(e.X)
		walkExpr(e.Y)
		for _, a := range e.Args {
			walkExpr(a)
		}
	}
	walkExpr(s.Target)
	walkExpr(s.Expr)
	for _, a := range s.Args {
		walkExpr(a)
	}
	for _, init := range s.Inits {
		walkExpr(init.Expr)
	}
	return out
}

// machineReachability marks machine types creatable from the main machine
// through the transitive closure of new statements.
func (f *facts) machineReachability() {
	f.mf[f.p.Main].reach = true
	for changed := true; changed; {
		changed = false
		for _, mf := range f.mf {
			if !mf.reach {
				continue
			}
			for _, c := range mf.conts {
				walkStmts(c.body, func(s *ir.Stmt) {
					if s.Op == ir.SNew && !f.mf[s.Machine].reach {
						f.mf[s.Machine].reach = true
						changed = true
					}
				})
			}
		}
	}
}

// stateReachability marks, per reachable machine, the states reachable from
// its initial state through transitions and call statements.
func (f *facts) stateReachability() {
	for _, mf := range f.mf {
		if !mf.reach {
			continue
		}
		work := []ir.StateID{mf.m.Init}
		mf.stReach[mf.m.Init] = true
		visit := func(t ir.StateID) {
			if !mf.stReach[t] {
				mf.stReach[t] = true
				work = append(work, t)
			}
		}
		for len(work) > 0 {
			s := work[len(work)-1]
			work = work[:len(work)-1]
			st := mf.m.States[s]
			for _, tr := range st.Trans {
				if tr.Kind != ir.TransNone {
					visit(tr.Target)
				}
			}
			for _, c := range f.stateContainers(mf, s) {
				walkStmts(c.body, func(stm *ir.Stmt) {
					if stm.Op == ir.SCallState {
						visit(stm.State)
					}
				})
			}
		}
	}
}

// stateContainers returns the containers state s can execute: its entry and
// exit blocks, the actions it binds, and any foreign models those call.
func (f *facts) stateContainers(mf *machFacts, s ir.StateID) []*container {
	var out []*container
	for _, c := range mf.conts {
		if containsState(c.owners, s) {
			out = append(out, c)
		}
	}
	return out
}

// reachableOwner reports whether any owner state of c is reachable.
func (mf *machFacts) reachableOwner(c *container) bool {
	for _, s := range c.owners {
		if mf.stReach[s] {
			return true
		}
	}
	return false
}

// --------------------------------------------------------------- points-to

func idLike(t ir.Type) bool { return t == ir.TypeID || t == ir.TypeAny }

// exprPts evaluates the type-level points-to set of expression e in machine
// m. Only id-typed values produce non-empty results.
func (f *facts) exprPts(m ir.MachineTypeID, e *ir.Expr, out *pts) bool {
	if e == nil {
		return false
	}
	switch e.Op {
	case ir.EThis:
		return out.add(m)
	case ir.EVar:
		mv := f.p.Machines[m].Vars[e.Var]
		if !idLike(mv.Type) {
			return false
		}
		return out.merge(f.varPts[m][e.Var])
	case ir.EArg, ir.EMsg:
		// Payload of the event being handled; EMsg is the event value itself
		// but an `any`-typed read may alias the payload, so fold both in.
		return out.merge(f.payloadPts[m])
	case ir.ECall:
		if idLike(f.p.Machines[m].Foreigns[e.ForeignFn].Result) {
			return out.addUnknown()
		}
		return false
	default:
		return false
	}
}

// pointsTo computes the flow-insensitive, type-level points-to sets of every
// id-typed variable and of event payloads, by fixpoint over assignments,
// creation initializers, and sends.
func (f *facts) pointsTo() {
	nm := len(f.p.Machines)
	f.varPts = make([][]*pts, nm)
	f.payloadPts = make([]*pts, nm)
	for mi, m := range f.p.Machines {
		f.varPts[mi] = make([]*pts, len(m.Vars))
		for vi := range m.Vars {
			f.varPts[mi][vi] = newPts(nm)
		}
		f.payloadPts[mi] = newPts(nm)
	}
	for _, iv := range f.p.MainInits {
		// Main initializers are constant expressions; evaluate for form.
		f.exprPts(f.p.Main, iv.Expr, f.varPts[f.p.Main][iv.Var])
	}
	for changed := true; changed; {
		changed = false
		for mi, mf := range f.mf {
			if !mf.reach {
				continue
			}
			m := ir.MachineTypeID(mi)
			for _, c := range mf.conts {
				walkStmts(c.body, func(s *ir.Stmt) {
					switch s.Op {
					case ir.SAssign:
						if idLike(mf.m.Vars[s.Var].Type) && f.exprPts(m, s.Expr, f.varPts[mi][s.Var]) {
							changed = true
						}
					case ir.SNew:
						if s.Var >= 0 && idLike(mf.m.Vars[s.Var].Type) && f.varPts[mi][s.Var].add(s.Machine) {
							changed = true
						}
						for _, init := range s.Inits {
							tv := f.p.Machines[s.Machine].Vars[init.Var]
							if idLike(tv.Type) && f.exprPts(m, init.Expr, f.varPts[s.Machine][init.Var]) {
								changed = true
							}
						}
					case ir.SSend:
						if !idLike(f.p.Events[s.Event].Payload) {
							return
						}
						tgt := newPts(len(f.p.Machines))
						f.exprPts(m, s.Target, tgt)
						for ti := range f.p.Machines {
							if tgt.types[ti] || tgt.unknown {
								if f.exprPts(m, s.Expr, f.payloadPts[ti]) {
									changed = true
								}
							}
						}
					case ir.SRaise:
						if idLike(f.p.Events[s.Event].Payload) && f.exprPts(m, s.Expr, f.payloadPts[mi]) {
							changed = true
						}
					}
				})
			}
		}
	}
}

// collectSites gathers the send sites of reachable code and derives the
// inbox, sends-to, and definite-target tables.
func (f *facts) collectSites() {
	nm := len(f.p.Machines)
	f.inbox = make([]ir.EventSet, nm)
	f.sendsTo = make([][]ir.EventSet, nm)
	f.definiteAt = make([][]*sendSite, nm)
	f.firstAt = make([][]*sendSite, nm)
	for i := range f.sendsTo {
		f.sendsTo[i] = make([]ir.EventSet, nm)
		f.definiteAt[i] = make([]*sendSite, len(f.p.Events))
		f.firstAt[i] = make([]*sendSite, len(f.p.Events))
	}
	for mi, mf := range f.mf {
		if !mf.reach {
			continue
		}
		for _, c := range mf.conts {
			if !mf.reachableOwner(c) {
				continue
			}
			var scan func(body []*ir.Stmt, inLoop bool)
			scan = func(body []*ir.Stmt, inLoop bool) {
				for _, s := range body {
					switch s.Op {
					case ir.SRaise:
						mf.raised.Add(s.Event)
						f.raisedAny.Add(s.Event)
					case ir.SSend:
						tgt := newPts(nm)
						f.exprPts(ir.MachineTypeID(mi), s.Target, tgt)
						site := &sendSite{from: ir.MachineTypeID(mi), cont: c, st: s, tgt: tgt, inLoop: inLoop}
						f.sites = append(f.sites, site)
						f.sentAny.Add(s.Event)
						one, definite := tgt.single()
						for ti := range f.p.Machines {
							if !tgt.types[ti] && !tgt.unknown {
								continue
							}
							f.inbox[ti].Add(s.Event)
							f.sendsTo[mi][ti].Add(s.Event)
							if definite && ir.MachineTypeID(ti) == one && f.definiteAt[ti][s.Event] == nil {
								f.definiteAt[ti][s.Event] = site
							}
							if f.firstAt[ti][s.Event] == nil {
								f.firstAt[ti][s.Event] = site
							}
						}
					}
					scan(s.Body, inLoop || s.Op == ir.SWhile)
					scan(s.Else, inLoop)
				}
			}
			scan(c.body, false)
		}
	}
}

// payloadFlow computes pdVar: id variables whose every value arrived in one
// of the machine's own event payloads (null permitted). The property is a
// greatest fixpoint — start optimistic, falsify on any assignment from a
// non-payload source, any creation stored into the variable, and any
// creation-time initializer (values mailed by the creator are not responses
// to anything the new machine said).
func (f *facts) payloadFlow() {
	f.pdVar = make([][]bool, len(f.p.Machines))
	for mi, m := range f.p.Machines {
		f.pdVar[mi] = make([]bool, len(m.Vars))
		for vi, v := range m.Vars {
			f.pdVar[mi][vi] = idLike(v.Type)
		}
	}
	for _, iv := range f.p.MainInits {
		if idLike(f.p.Machines[f.p.Main].Vars[iv.Var].Type) && iv.Expr != nil && iv.Expr.Op != ir.ENull {
			f.pdVar[f.p.Main][iv.Var] = false
		}
	}
	for changed := true; changed; {
		changed = false
		for mi, mf := range f.mf {
			if !mf.reach {
				continue
			}
			for _, c := range mf.conts {
				if !mf.reachableOwner(c) {
					continue
				}
				walkStmts(c.body, func(s *ir.Stmt) {
					switch s.Op {
					case ir.SAssign:
						if idLike(mf.m.Vars[s.Var].Type) && f.pdVar[mi][s.Var] &&
							!f.exprPayloadDerived(ir.MachineTypeID(mi), s.Expr) {
							f.pdVar[mi][s.Var] = false
							changed = true
						}
					case ir.SNew:
						if s.Var >= 0 && idLike(mf.m.Vars[s.Var].Type) && f.pdVar[mi][s.Var] {
							f.pdVar[mi][s.Var] = false
							changed = true
						}
						for _, init := range s.Inits {
							tv := f.p.Machines[s.Machine].Vars[init.Var]
							if idLike(tv.Type) && f.pdVar[s.Machine][init.Var] &&
								init.Expr != nil && init.Expr.Op != ir.ENull {
								f.pdVar[s.Machine][init.Var] = false
								changed = true
							}
						}
					}
				})
			}
		}
	}
}

// exprPayloadDerived reports whether e can only evaluate to an id that
// arrived in one of m's event payloads, or to null.
func (f *facts) exprPayloadDerived(m ir.MachineTypeID, e *ir.Expr) bool {
	if e == nil {
		return false
	}
	switch e.Op {
	case ir.EArg, ir.EMsg, ir.ENull:
		return true
	case ir.EVar:
		return f.pdVar[m][e.Var]
	}
	return false
}

// raiseCycles computes raiseAdj and raiseCycle for every reachable machine:
// the dequeue-free movement graph (entry raises an event the state steps or
// calls on) and the states trapped on its cycles.
func (f *facts) raiseCycles() {
	for _, mf := range f.mf {
		if !mf.reach {
			continue
		}
		n := len(mf.m.States)
		mf.raiseAdj = make([][]int, n)
		mf.raiseCycle = make([]bool, n)
		for _, st := range mf.m.States {
			if !mf.stReach[st.ID] {
				continue
			}
			var raisedInEntry ir.EventSet
			walkStmts(st.Entry, func(s *ir.Stmt) {
				if s.Op == ir.SRaise {
					raisedInEntry.Add(s.Event)
				}
			})
			for _, ev := range raisedInEntry.Events() {
				if tr := st.Trans[ev]; tr.Kind != ir.TransNone {
					mf.raiseAdj[st.ID] = append(mf.raiseAdj[st.ID], int(tr.Target))
				}
			}
		}
		for _, scc := range stronglyConnected(n, mf.raiseAdj) {
			if len(scc) == 1 && !containsInt(mf.raiseAdj[scc[0]], scc[0]) {
				continue
			}
			for _, v := range scc {
				mf.raiseCycle[v] = true
			}
		}
	}
}

func containsInt(list []int, x int) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}

// ----------------------------------------------------------------- frames

// frames computes, per machine, which states can live in a bottom call
// frame and which states can sit below each state's frame.
func (f *facts) frames() {
	for _, mf := range f.mf {
		if !mf.reach {
			continue
		}
		n := len(mf.m.States)
		mf.bottom = make([]bool, n)
		mf.ancestors = make([][]ir.StateID, n)

		// stepClosure marks every state reachable from root by step
		// transitions alone — the states a single frame can move through.
		stepClosure := func(root ir.StateID) []bool {
			seen := make([]bool, n)
			work := []ir.StateID{root}
			seen[root] = true
			for len(work) > 0 {
				s := work[len(work)-1]
				work = work[:len(work)-1]
				for _, tr := range mf.m.States[s].Trans {
					if tr.Kind == ir.TransStep && !seen[tr.Target] {
						seen[tr.Target] = true
						work = append(work, tr.Target)
					}
				}
			}
			return seen
		}

		for _, s := range stepClosureStates(stepClosure(mf.m.Init)) {
			mf.bottom[s] = true
		}

		// Push roots and their pushers.
		pushersOf := map[ir.StateID][]ir.StateID{}
		for _, st := range mf.m.States {
			for _, tr := range st.Trans {
				if tr.Kind == ir.TransCall {
					pushersOf[tr.Target] = append(pushersOf[tr.Target], st.ID)
				}
			}
		}
		for _, c := range mf.conts {
			walkStmts(c.body, func(stm *ir.Stmt) {
				if stm.Op != ir.SCallState {
					return
				}
				for _, o := range c.owners {
					if !containsState(pushersOf[stm.State], o) {
						pushersOf[stm.State] = append(pushersOf[stm.State], o)
					}
				}
			})
		}
		for root, pushers := range pushersOf {
			for _, s := range stepClosureStates(stepClosure(root)) {
				for _, q := range pushers {
					if !containsState(mf.ancestors[s], q) {
						mf.ancestors[s] = append(mf.ancestors[s], q)
					}
				}
			}
		}
	}
}

func stepClosureStates(seen []bool) []ir.StateID {
	var out []ir.StateID
	for i, b := range seen {
		if b {
			out = append(out, ir.StateID(i))
		}
	}
	return out
}

// ---------------------------------------------------------------- coverage

// coverage computes per-state event coverage: cov is the state's own
// transition/action/defer table; effCov additionally credits events that
// every possible caller chain below the state covers (an uncovered event
// pops the stack until a caller handles it, and a caller's deferral is
// inherited by the pushed frame).
func (f *facts) coverage() {
	for _, mf := range f.mf {
		if !mf.reach {
			continue
		}
		ne := len(f.p.Events)
		mf.cov = make([][]bool, len(mf.m.States))
		mf.effCov = make([][]bool, len(mf.m.States))
		for _, st := range mf.m.States {
			row := make([]bool, ne)
			for e := 0; e < ne; e++ {
				row[e] = st.Trans[e].Kind != ir.TransNone ||
					st.Action[e] != ir.NoAction ||
					st.Deferred.Contains(ir.EventID(e))
			}
			mf.cov[st.ID] = row
			eff := make([]bool, ne)
			copy(eff, row)
			mf.effCov[st.ID] = eff
		}
		for changed := true; changed; {
			changed = false
			for _, st := range mf.m.States {
				s := st.ID
				if mf.bottom[s] || len(mf.ancestors[s]) == 0 {
					continue
				}
				for e := 0; e < ne; e++ {
					if mf.effCov[s][e] {
						continue
					}
					all := true
					for _, q := range mf.ancestors[s] {
						if !mf.effCov[q][e] {
							all = false
							break
						}
					}
					if all {
						mf.effCov[s][e] = true
						changed = true
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------- triggers

// handlerStates returns the states whose handler tables can resolve a raise
// of e performed while s is the top frame state: s itself if it covers e,
// otherwise every possible caller the pop can land on.
func (mf *machFacts) handlerStates(s ir.StateID, e ir.EventID, seen []bool) []ir.StateID {
	if seen[s] {
		return nil
	}
	seen[s] = true
	st := mf.m.States[s]
	if st.Trans[e].Kind != ir.TransNone || st.Action[e] != ir.NoAction {
		return []ir.StateID{s}
	}
	var out []ir.StateID
	for _, q := range mf.ancestors[s] {
		for _, h := range mf.handlerStates(q, e, seen) {
			if !containsState(out, h) {
				out = append(out, h)
			}
		}
	}
	return out
}

// triggers computes the trigger set of every container by fixpoint: the
// initial state's entry runs at Startup; handler code runs under the token
// of a dequeued inbox event; code reached through a raise inherits the
// raising container's triggers (a raised local event is not a fresh
// stimulus — it carries its cause forward).
func (f *facts) triggers() {
	for _, mf := range f.mf {
		if !mf.reach {
			continue
		}
		mf.conts[mf.entryOf[mf.m.Init]].trig.startup = true
	}
	for changed := true; changed; {
		changed = false
		for mi, mf := range f.mf {
			if !mf.reach {
				continue
			}
			m := mf.m
			// Dequeued inbox events trigger the handlers bound to them.
			for _, st := range m.States {
				if !mf.stReach[st.ID] {
					continue
				}
				for _, ev := range f.inbox[mi].Events() {
					tok := &tokens{ev: ir.NewEventSet(ev)}
					tr := st.Trans[ev]
					switch tr.Kind {
					case ir.TransStep:
						if mf.conts[mf.entryOf[tr.Target]].trig.merge(tok) {
							changed = true
						}
						if mf.conts[mf.exitOf[st.ID]].trig.merge(tok) {
							changed = true
						}
					case ir.TransCall:
						if mf.conts[mf.entryOf[tr.Target]].trig.merge(tok) {
							changed = true
						}
					}
					if a := st.Action[ev]; a != ir.NoAction {
						if mf.conts[mf.actOf[a]].trig.merge(tok) {
							changed = true
						}
					}
				}
			}
			// Raises, call statements, leaves, and model calls propagate the
			// enclosing container's triggers.
			for _, c := range mf.conts {
				if !mf.reachableOwner(c) {
					continue
				}
				walkStmts(c.body, func(stm *ir.Stmt) {
					switch stm.Op {
					case ir.SRaise:
						for _, o := range c.owners {
							if !mf.stReach[o] {
								continue
							}
							seen := make([]bool, len(m.States))
							for _, h := range mf.handlerStates(o, stm.Event, seen) {
								hs := m.States[h]
								if tr := hs.Trans[stm.Event]; tr.Kind != ir.TransNone {
									if mf.conts[mf.entryOf[tr.Target]].trig.merge(&c.trig) {
										changed = true
									}
									if tr.Kind == ir.TransStep {
										if mf.conts[mf.exitOf[h]].trig.merge(&c.trig) {
											changed = true
										}
									}
								} else if a := hs.Action[stm.Event]; a != ir.NoAction {
									if mf.conts[mf.actOf[a]].trig.merge(&c.trig) {
										changed = true
									}
								}
							}
						}
					case ir.SCallState:
						if mf.conts[mf.entryOf[stm.State]].trig.merge(&c.trig) {
							changed = true
						}
					case ir.SLeave:
						for _, o := range c.owners {
							if mf.conts[mf.exitOf[o]].trig.merge(&c.trig) {
								changed = true
							}
						}
					}
					for _, fi := range foreignCalls(stm) {
						if ci := mf.modelOf[fi]; ci >= 0 {
							if mf.conts[ci].trig.merge(&c.trig) {
								changed = true
							}
						}
					}
				})
			}
		}
	}
}

// ------------------------------------------------------------ multiplicity

// multiplicity marks machine types that can have more than one live
// instance: several creation sites, a creation site inside a loop, a
// self-creating type, or a creator that is itself multi-instance.
func (f *facts) multiplicity() {
	nm := len(f.p.Machines)
	f.multi = make([]bool, nm)
	type creation struct {
		from   ir.MachineTypeID
		inLoop bool
	}
	creations := make([][]creation, nm)
	for mi, mf := range f.mf {
		if !mf.reach {
			continue
		}
		for _, c := range mf.conts {
			if !mf.reachableOwner(c) {
				continue
			}
			var scan func(body []*ir.Stmt, inLoop bool)
			scan = func(body []*ir.Stmt, inLoop bool) {
				for _, s := range body {
					if s.Op == ir.SNew {
						creations[s.Machine] = append(creations[s.Machine], creation{from: ir.MachineTypeID(mi), inLoop: inLoop})
					}
					scan(s.Body, inLoop || s.Op == ir.SWhile)
					scan(s.Else, inLoop)
				}
			}
			scan(c.body, false)
		}
	}
	for ti, cs := range creations {
		if len(cs) > 1 {
			f.multi[ti] = true
		}
		for _, c := range cs {
			if c.inLoop || int(c.from) == ti {
				f.multi[ti] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for ti, cs := range creations {
			if f.multi[ti] {
				continue
			}
			for _, c := range cs {
				if f.multi[c.from] {
					f.multi[ti] = true
					changed = true
					break
				}
			}
		}
	}
}

// -------------------------------------------------------------- classify

// classify splits each machine's inbox into correlated events (only ever
// sent in response to something the receiver itself sent to the sender) and
// spontaneous events, and grades the spontaneous ones by recurrence.
//
// A site is correlated when its trigger set is pure responses to the
// receiver; for multi-instance receivers the site's target must additionally
// be payload-derived, so the response reaches the instance that asked rather
// than an arbitrary sibling. An uncorrelated site is recurring unless its
// only non-response stimulus is the sender's startup and the site cannot
// re-execute (sender is a single instance, the site is not in a loop, and
// its states are off the sender's raise cycles) — then the event arrives at
// most during one bounded startup burst, and only the receiver states
// reachable without consuming any burst event can still be surprised by it.
func (f *facts) classify() {
	nm := len(f.p.Machines)
	f.spont = make([]ir.EventSet, nm)
	f.spontRe = make([]ir.EventSet, nm)
	f.onceAt = make([]map[ir.EventID][]bool, nm)
	reachMemo := map[[2]int][]bool{}
	for mi, mf := range f.mf {
		if !mf.reach {
			continue
		}
		f.onceAt[mi] = map[ir.EventID][]bool{}
		for _, ev := range f.inbox[mi].Events() {
			recurring := false
			var onceFrom []ir.MachineTypeID
			for _, site := range f.sites {
				if site.st.Event != ev {
					continue
				}
				if !site.tgt.types[mi] && !site.tgt.unknown {
					continue
				}
				if f.siteCorrelated(site, mi) {
					continue
				}
				if f.siteOnce(site, mi) {
					onceFrom = append(onceFrom, site.from)
				} else {
					recurring = true
				}
			}
			if !recurring && len(onceFrom) == 0 {
				continue
			}
			f.spont[mi].Add(ev)
			if recurring {
				f.spontRe[mi].Add(ev)
				continue
			}
			allowed := make([]bool, len(mf.m.States))
			for _, from := range onceFrom {
				key := [2]int{mi, int(from)}
				r := reachMemo[key]
				if r == nil {
					r = f.avoidReach(mi, f.burst(from, mi))
					reachMemo[key] = r
				}
				for s, b := range r {
					allowed[s] = allowed[s] || b
				}
			}
			f.onceAt[mi][ev] = allowed
		}
	}
}

// siteCorrelated reports whether the site only sends as a response to the
// receiver's own messages (reaching, for multi-instance receivers, the
// specific instance those messages came from).
func (f *facts) siteCorrelated(site *sendSite, mi int) bool {
	if site.tgt.unknown {
		return false
	}
	if !site.cont.trig.correlatedWith(f.sendsTo[mi][site.from]) {
		return false
	}
	if f.multi[mi] && !f.exprPayloadDerived(site.from, site.st.Target) {
		return false
	}
	return true
}

// siteOnce reports whether an uncorrelated site can fire at most once, as
// part of the sender's startup: its trigger is startup plus responses, the
// sender is a single instance, and nothing lets the site's code re-execute
// without an intervening stimulus from the receiver.
func (f *facts) siteOnce(site *sendSite, mi int) bool {
	if site.tgt.unknown || site.inLoop || f.multi[site.from] {
		return false
	}
	t := &site.cont.trig
	if t.unknown || !t.startup {
		return false
	}
	for _, e := range t.ev.Events() {
		if !f.sendsTo[mi][site.from].Contains(e) {
			return false
		}
	}
	sf := f.mf[site.from]
	for _, o := range site.cont.owners {
		if sf.raiseCycle[o] {
			return false
		}
	}
	return true
}

// burst returns the events that from's startup pass can mail to machine to:
// everything sent by a site whose trigger includes startup.
func (f *facts) burst(from ir.MachineTypeID, to int) ir.EventSet {
	var out ir.EventSet
	for _, site := range f.sites {
		if site.from != from || !site.cont.trig.startup {
			continue
		}
		if !site.tgt.types[to] && !site.tgt.unknown {
			continue
		}
		out.Add(site.st.Event)
	}
	return out
}

// avoidReach returns the states of machine mi reachable from its initial
// state without ever consuming an event in avoid (transitions on avoided
// events stay open only if the machine also raises the event itself).
func (f *facts) avoidReach(mi int, avoid ir.EventSet) []bool {
	mf := f.mf[mi]
	seen := make([]bool, len(mf.m.States))
	work := []ir.StateID{mf.m.Init}
	seen[mf.m.Init] = true
	visit := func(t ir.StateID) {
		if !seen[t] {
			seen[t] = true
			work = append(work, t)
		}
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for e, tr := range mf.m.States[s].Trans {
			if tr.Kind == ir.TransNone {
				continue
			}
			if avoid.Contains(ir.EventID(e)) && !mf.raised.Contains(ir.EventID(e)) {
				continue
			}
			visit(tr.Target)
		}
		for _, c := range f.stateContainers(mf, s) {
			walkStmts(c.body, func(stm *ir.Stmt) {
				if stm.Op == ir.SCallState {
					visit(stm.State)
				}
			})
		}
	}
	return seen
}

// ----------------------------------------------------------------- resting

// resting computes mayRest: whether a state's entry code can complete (or
// leave), putting the machine at a dequeue point in that state. Raises,
// deletes, returns, failing asserts, and divergent loops end the attempt.
func (f *facts) resting() {
	for _, mf := range f.mf {
		if !mf.reach {
			continue
		}
		mf.mayRest = make([]bool, len(mf.m.States))
		for _, st := range mf.m.States {
			mf.mayRest[st.ID] = bodyCompletes(st.Entry)
		}
	}
}

// bodyCompletes reports whether some execution path runs past the end of
// body (or stops at a leave), i.e. the machine can come to rest after it.
func bodyCompletes(body []*ir.Stmt) bool {
	for _, s := range body {
		switch s.Op {
		case ir.SRaise, ir.SDelete, ir.SReturn:
			return false
		case ir.SLeave:
			return true
		case ir.SAssert:
			if isConstFalse(s.Expr) {
				return false
			}
		case ir.SIf:
			if !bodyCompletes(s.Body) && !bodyCompletes(s.Else) {
				return false
			}
		case ir.SWhile:
			if isConstTrue(s.Expr) {
				return false
			}
		}
	}
	return true
}

func isConstFalse(e *ir.Expr) bool {
	return e != nil && (e.Op == ir.EBool || e.Op == ir.EInt) && e.Int == 0
}

func isConstTrue(e *ir.Expr) bool {
	return e != nil && (e.Op == ir.EBool || e.Op == ir.EInt) && e.Int != 0
}

// ----------------------------------------------------------------- pending

// pending computes the per-(machine, state) over-approximation of events
// that can be waiting in the queue on entry to the state: spontaneous
// events can be pending anywhere; responses provoked by a state's own sends
// join the set and flow forward along transitions without ever being
// removed (a gen-only abstraction in the style of event-set analyses).
func (f *facts) pending() {
	f.pend = make([][]ir.EventSet, len(f.p.Machines))
	for mi, mf := range f.mf {
		f.pend[mi] = make([]ir.EventSet, len(mf.m.States))
		if !mf.reach {
			continue
		}
		for _, st := range mf.m.States {
			if mf.stReach[st.ID] {
				f.pend[mi][st.ID] = f.spont[mi].Clone()
			}
		}
		gen := make([]ir.EventSet, len(mf.m.States))
		for _, site := range f.sites {
			if int(site.from) != mi {
				continue
			}
			var responses ir.EventSet
			for ti := range f.p.Machines {
				if site.tgt.types[ti] || site.tgt.unknown {
					responses = responses.Union(f.sendsTo[ti][mi])
				}
			}
			for _, o := range site.cont.owners {
				gen[o] = gen[o].Union(responses)
			}
		}
		for changed := true; changed; {
			changed = false
			for _, st := range mf.m.States {
				if !mf.stReach[st.ID] {
					continue
				}
				out := f.pend[mi][st.ID].Union(gen[st.ID])
				flow := func(t ir.StateID) {
					u := f.pend[mi][t].Union(out)
					if !u.Equal(f.pend[mi][t]) {
						f.pend[mi][t] = u
						changed = true
					}
				}
				for _, tr := range st.Trans {
					if tr.Kind != ir.TransNone {
						flow(tr.Target)
					}
				}
				for _, q := range mf.ancestors[st.ID] {
					flow(q)
				}
			}
		}
	}
}

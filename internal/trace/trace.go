// Package trace renders violation schedules as human-readable
// counterexamples by replaying them against the operational semantics:
// each scheduling decision is shown with the machine's control state before
// and after, the events it consumed, and the cross-machine effects.
package trace

import (
	"fmt"
	"io"
	"strings"

	"pgo/internal/check"
	"pgo/internal/core"
	"pgo/internal/ir"
)

// Render replays v's schedule over a fresh instance of prog and writes a
// step-by-step account to w. It returns an error if the replay diverges
// from the recorded schedule (which would indicate a nondeterminism bug).
func Render(prog *ir.Program, v *check.Violation, w io.Writer) error {
	g := core.NewGlobal(prog, nil)
	if _, err := g.CreateMain(); err != nil {
		return fmt.Errorf("trace: creating main machine: %v", err)
	}
	fmt.Fprintf(w, "counterexample: %v\n", v.Err)
	fmt.Fprintf(w, "schedule (%d steps):\n", len(v.Trace))
	for i, step := range v.Trace {
		if step.Fault != check.FaultNone {
			if err := replayFault(prog, g, step, i+1, w); err != nil {
				return err
			}
			continue
		}
		before := stateOf(g, step.Machine)
		if step.Delays > 0 {
			fmt.Fprintf(w, "%4d. [%d delays]\n", i+1, step.Delays)
		}
		out := g.RunToSchedPoint(step.Machine, &core.FixedChoices{Bits: step.Choices}, 0)
		after := stateOf(g, step.Machine)
		head := fmt.Sprintf("%4d. %s#%-2d %-14s", i+1, step.Type, step.Machine, arrow(before, after))
		switch out.Kind {
		case core.OutSend:
			target := "?"
			if c := g.Lookup(out.SentTo); c != nil {
				target = fmt.Sprintf("%s#%d", prog.Machines[c.Type].Name, out.SentTo)
			}
			detail := fmt.Sprintf("sends %s to %s", prog.Events[out.SentEvent].Name, target)
			if !out.Delivered {
				detail += " (deduplicated)"
			}
			fmt.Fprintf(w, "%s %s%s\n", head, detail, choices(step.Choices))
		case core.OutNew:
			fmt.Fprintf(w, "%s creates %s#%d%s\n", head,
				prog.Machines[out.CreatedType].Name, out.Created, choices(step.Choices))
		case core.OutBlocked:
			fmt.Fprintf(w, "%s blocks%s\n", head, choices(step.Choices))
		case core.OutHalted:
			fmt.Fprintf(w, "%s deletes itself%s\n", head, choices(step.Choices))
		case core.OutYield:
			fmt.Fprintf(w, "%s yields%s\n", head, choices(step.Choices))
		case core.OutError:
			fmt.Fprintf(w, "%s ERROR: %v\n", head, out.Err)
			if i != len(v.Trace)-1 {
				return fmt.Errorf("trace: error fired at step %d of %d", i+1, len(v.Trace))
			}
			if v.Err != nil && out.Err.Kind != v.Err.Kind {
				return fmt.Errorf("trace: replay produced %v, recorded %v", out.Err.Kind, v.Err.Kind)
			}
			return nil
		}
		if len(out.Dequeued) > 0 {
			var evs []string
			for _, q := range out.Dequeued {
				evs = append(evs, prog.Events[q.Event].Name)
			}
			fmt.Fprintf(w, "      └ consumed %s\n", strings.Join(evs, ", "))
		}
	}
	if v.Err != nil {
		return fmt.Errorf("trace: schedule replay ended without reproducing %v", v.Err)
	}
	return nil
}

// replayFault applies one injected environment fault (a chaos-mode trace
// step) to the replay state, mirroring the explorer's fault transitions.
func replayFault(prog *ir.Program, g *core.Global, step check.TraceStep, n int, w io.Writer) error {
	head := fmt.Sprintf("%4d. %s#%-2d %-14s", n, step.Type, step.Machine, "⚡fault")
	switch step.Fault {
	case check.FaultCrash:
		if !g.InjectCrash(step.Machine) {
			return fmt.Errorf("trace: step %d crashes %s#%d, but it is not live", n, step.Type, step.Machine)
		}
		fmt.Fprintf(w, "%s crashes (environment kills the machine)\n", head)
	case check.FaultDrop:
		q, ok := g.InjectDrop(step.Machine)
		if !ok {
			return fmt.Errorf("trace: step %d drops a message for %s#%d, but none is deliverable", n, step.Type, step.Machine)
		}
		fmt.Fprintf(w, "%s loses %s in transit\n", head, prog.Events[q.Event].Name)
	case check.FaultDup:
		q, ok := g.InjectDup(step.Machine)
		if !ok {
			return fmt.Errorf("trace: step %d duplicates a message for %s#%d, but none is deliverable", n, step.Type, step.Machine)
		}
		fmt.Fprintf(w, "%s receives duplicate %s\n", head, prog.Events[q.Event].Name)
	default:
		return fmt.Errorf("trace: step %d has unknown fault kind %v", n, step.Fault)
	}
	return nil
}

func stateOf(g *core.Global, id core.MachineID) string {
	c := g.Lookup(id)
	if c == nil || c.Mode == core.ModeHalted {
		return "(deleted)"
	}
	st := c.CurrentState()
	if st < 0 {
		return "(?)"
	}
	return g.Prog.Machines[c.Type].States[st].Name
}

func arrow(before, after string) string {
	if before == after {
		return "@" + before
	}
	return before + "→" + after
}

func choices(bits []bool) string {
	if len(bits) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("  [*:")
	for _, bit := range bits {
		if bit {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte(']')
	return b.String()
}

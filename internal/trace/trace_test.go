package trace_test

import (
	"strings"
	"testing"

	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/psamples"
	"pgo/internal/trace"
)

func TestRenderElevatorBug(t *testing.T) {
	prog, diags, err := compile.Source("elevator-buggy", psamples.ElevatorBuggy)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 2, StopAtFirstError: true, MaxStates: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.FirstViolation()
	if v == nil {
		t.Fatal("no violation to render")
	}
	var b strings.Builder
	if err := trace.Render(prog, v, &b); err != nil {
		t.Fatalf("render: %v\noutput so far:\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"counterexample:",
		"unhandled event",
		"CloseDoor",
		"creates Elevator",
		"ERROR:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, out)
		}
	}
	// Every schedule step must appear.
	for i := 1; i <= len(v.Trace); i++ {
		if !strings.Contains(out, trim(i)) {
			t.Errorf("step %d missing from rendering", i)
		}
	}
}

func trim(i int) string {
	return strings.TrimSpace(strings.Repeat(" ", 4) + itoa(i) + ".")
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestRenderGermanAssert(t *testing.T) {
	prog, diags, err := compile.Source("german-buggy", psamples.GermanBuggy(2))
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	res, err := check.Explore(prog, check.Options{
		Mode: check.DelayBounded, Bound: 1, StopAtFirstError: true, MaxStates: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.FirstViolation()
	if v == nil {
		t.Fatal("no violation")
	}
	var b strings.Builder
	if err := trace.Render(prog, v, &b); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(b.String(), "assertion failed") {
		t.Fatalf("missing assertion failure:\n%s", b.String())
	}
}

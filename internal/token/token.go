// Package token defines the lexical tokens of the P surface language.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

const (
	// Special tokens.
	Illegal Kind = iota
	EOF

	// Literals and identifiers.
	Ident  // Elevator, x, OpenDoor
	Int    // 123
	String // "text" (used only in pragma-like positions; reserved)

	// Operators and punctuation.
	Assign  // =
	Plus    // +
	Minus   // -
	Star    // *  (also the nondeterministic-choice expression)
	Slash   // /
	Percent // %
	Eq      // ==
	Neq     // !=
	Lt      // <
	Le      // <=
	Gt      // >
	Ge      // >=
	Not     // !
	AndAnd  // &&
	OrOr    // ||
	LParen  // (
	RParen  // )
	LBrace  // {
	RBrace  // }
	Comma   // ,
	Semi    // ;
	Colon   // :
	Dot     // .

	// Keywords.
	KwProgram // reserved
	KwEvent
	KwMachine
	KwGhost
	KwVar
	KwAction
	KwState
	KwEntry
	KwExit
	KwDefer
	KwPostpone
	KwOn
	KwGoto
	KwPush
	KwDo
	KwIgnore
	KwNew
	KwDelete
	KwSend
	KwRaise
	KwLeave
	KwReturn
	KwAssert
	KwIf
	KwElse
	KwWhile
	KwCall
	KwMain
	KwForeign
	KwSkip
	KwTrue
	KwFalse
	KwNull
	KwThis
	KwMsg
	KwArg
	KwInt
	KwBool
	KwEventT // the type name "event"
	KwID     // the type name "id"
	KwVoid

	kindCount
)

var kindNames = [...]string{
	Illegal: "ILLEGAL",
	EOF:     "EOF",
	Ident:   "IDENT",
	Int:     "INT",
	String:  "STRING",
	Assign:  "=",
	Plus:    "+",
	Minus:   "-",
	Star:    "*",
	Slash:   "/",
	Percent: "%",
	Eq:      "==",
	Neq:     "!=",
	Lt:      "<",
	Le:      "<=",
	Gt:      ">",
	Ge:      ">=",
	Not:     "!",
	AndAnd:  "&&",
	OrOr:    "||",
	LParen:  "(",
	RParen:  ")",
	LBrace:  "{",
	RBrace:  "}",
	Comma:   ",",
	Semi:    ";",
	Colon:   ":",
	Dot:     ".",

	KwProgram:  "program",
	KwEvent:    "event",
	KwMachine:  "machine",
	KwGhost:    "ghost",
	KwVar:      "var",
	KwAction:   "action",
	KwState:    "state",
	KwEntry:    "entry",
	KwExit:     "exit",
	KwDefer:    "defer",
	KwPostpone: "postpone",
	KwOn:       "on",
	KwGoto:     "goto",
	KwPush:     "push",
	KwDo:       "do",
	KwIgnore:   "ignore",
	KwNew:      "new",
	KwDelete:   "delete",
	KwSend:     "send",
	KwRaise:    "raise",
	KwLeave:    "leave",
	KwReturn:   "return",
	KwAssert:   "assert",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwCall:     "call",
	KwMain:     "main",
	KwForeign:  "foreign",
	KwSkip:     "skip",
	KwTrue:     "true",
	KwFalse:    "false",
	KwNull:     "null",
	KwThis:     "this",
	KwMsg:      "msg",
	KwArg:      "arg",
	KwInt:      "int",
	KwBool:     "bool",
	KwEventT:   "event", // note: same spelling as KwEvent; lexer always emits KwEvent
	KwID:       "id",
	KwVoid:     "void",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps keyword spellings to their token kinds. "event" maps to
// KwEvent; the parser treats it as the type keyword where a type is expected.
var keywords = map[string]Kind{
	"program":  KwProgram,
	"event":    KwEvent,
	"machine":  KwMachine,
	"ghost":    KwGhost,
	"var":      KwVar,
	"action":   KwAction,
	"state":    KwState,
	"entry":    KwEntry,
	"exit":     KwExit,
	"defer":    KwDefer,
	"postpone": KwPostpone,
	"on":       KwOn,
	"goto":     KwGoto,
	"push":     KwPush,
	"do":       KwDo,
	"ignore":   KwIgnore,
	"new":      KwNew,
	"delete":   KwDelete,
	"send":     KwSend,
	"raise":    KwRaise,
	"leave":    KwLeave,
	"return":   KwReturn,
	"assert":   KwAssert,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"call":     KwCall,
	"main":     KwMain,
	"foreign":  KwForeign,
	"skip":     KwSkip,
	"true":     KwTrue,
	"false":    KwFalse,
	"null":     KwNull,
	"this":     KwThis,
	"msg":      KwMsg,
	"arg":      KwArg,
	"int":      KwInt,
	"bool":     KwBool,
	"id":       KwID,
	"void":     KwVoid,
}

// Lookup returns the keyword kind for an identifier spelling, or Ident.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// IsKeyword reports whether k is a keyword token.
func IsKeyword(k Kind) bool { return k >= KwProgram && k < kindCount }

// IsLiteral reports whether k is an identifier or literal token.
func IsLiteral(k Kind) bool { return k == Ident || k == Int || k == String }

// Package codegen emits executable Go source from an erased P program —
// the analog of the paper's C code generator (§4). The generated file
// contains the same artifact the paper describes: statically-allocated,
// index-addressed tables of events, machine types, states (with transition,
// deferred-event and action tables) and handler bodies, plus a main function
// that hands the tables to the runtime library.
//
// The generated file imports pgo/internal/ir, pgo/internal/core and
// pgo/internal/runtime, so it must be placed inside this module (the paper's
// generated C likewise links against the private P runtime library).
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"pgo/internal/ir"
)

// Options configures generation.
type Options struct {
	// Package is the generated package name (default "main").
	Package string
	// EmitMain adds a func main() that instantiates MainMachine and waits
	// for quiescence. Only valid when Package == "main".
	EmitMain bool
	// MainMachine names the machine main() instantiates; defaults to the
	// program's main machine if it survived erasure, else the first real
	// machine.
	MainMachine string
	// Foreign lists the foreign bindings main() expects, as "Machine.fn"
	// keys; the generated file declares a stub map the host fills in.
	Foreign []string
}

// Generate renders prog as a Go source file. The program must be erased
// (or ghost-free): generated drivers never contain ghost machines.
func Generate(prog *ir.Program, opts Options) (string, error) {
	for _, m := range prog.Machines {
		if m.Ghost && !m.ErasedStub {
			return "", fmt.Errorf("codegen: program has live ghost machine %s; erase first", m.Name)
		}
	}
	if opts.Package == "" {
		opts.Package = "main"
	}
	if opts.EmitMain && opts.Package != "main" {
		return "", fmt.Errorf("codegen: EmitMain requires package main, got %s", opts.Package)
	}
	mainMachine := opts.MainMachine
	if mainMachine == "" {
		if mm := prog.Machines[prog.Main]; !mm.ErasedStub {
			mainMachine = mm.Name
		} else {
			for _, m := range prog.Machines {
				if !m.ErasedStub {
					mainMachine = m.Name
					break
				}
			}
		}
	}
	if mainMachine == "" {
		return "", fmt.Errorf("codegen: no real machine to instantiate")
	}

	g := &gen{}
	g.pf("// Code generated from P program %q by pc. DO NOT EDIT.\n", strings.TrimSuffix(prog.Name, ".erased"))
	g.pf("\npackage %s\n\n", opts.Package)
	g.pf("import (\n")
	if opts.EmitMain {
		g.pf("\t\"fmt\"\n\t\"os\"\n\t\"time\"\n\n")
	}
	g.pf("\t\"pgo/internal/core\"\n")
	g.pf("\t\"pgo/internal/ir\"\n")
	g.pf("\tpruntime \"pgo/internal/runtime\"\n")
	g.pf(")\n\n")

	// Event and machine enumerations, like the paper's C enums.
	g.pf("// Event identifiers.\nconst (\n")
	for i, e := range prog.Events {
		g.pf("\tEv%s ir.EventID = %d\n", sanitize(e.Name), i)
	}
	g.pf(")\n\n")
	g.pf("// Machine type identifiers.\nconst (\n")
	for i, m := range prog.Machines {
		if m.ErasedStub {
			continue
		}
		g.pf("\tMach%s ir.MachineTypeID = %d\n", sanitize(m.Name), i)
	}
	g.pf(")\n\n")

	g.pf("// BuildProgram reconstructs the compiled program tables.\n")
	g.pf("func BuildProgram() *ir.Program {\n")
	g.pf("\tp := &ir.Program{\n")
	g.pf("\t\tName: %q,\n", prog.Name)
	g.pf("\t\tMain: %d,\n", prog.Main)
	g.pf("\t\tNumStmts: %d,\n", prog.NumStmts)
	g.pf("\t\tErased: true,\n")
	g.pf("\t\tEvents: []ir.Event{\n")
	for _, e := range prog.Events {
		g.pf("\t\t\t{Name: %q, Payload: %s},\n", e.Name, typeName(e.Payload))
	}
	g.pf("\t\t},\n\t}\n")
	for i, m := range prog.Machines {
		g.machine(prog, i, m)
	}
	g.pf("\treturn p\n}\n")
	if NeedsStubHelper(prog) {
		g.pf("%s\n", stubHelper)
	} else {
		g.pf("\n")
	}

	// Foreign binding stubs.
	g.pf("// ForeignBindings is filled by host code before NewRuntime; keys are\n// \"Machine.function\".\nvar ForeignBindings = core.ForeignMap{}\n\n")
	if len(opts.Foreign) > 0 {
		g.pf("// Required foreign bindings:\n")
		keys := append([]string(nil), opts.Foreign...)
		sort.Strings(keys)
		for _, k := range keys {
			g.pf("//\t%s\n", k)
		}
		g.pf("\n")
	}

	g.pf("// NewRuntime builds a runtime over the generated tables.\n")
	g.pf("func NewRuntime(opts pruntime.Options) (*pruntime.Runtime, error) {\n")
	g.pf("\tif opts.Foreign == nil {\n\t\topts.Foreign = ForeignBindings\n\t}\n")
	g.pf("\treturn pruntime.New(BuildProgram(), opts)\n}\n")

	if opts.EmitMain {
		g.pf("\nfunc main() {\n")
		g.pf("\trt, err := NewRuntime(pruntime.Options{OnError: func(e *core.Err) { fmt.Fprintln(os.Stderr, e) }})\n")
		g.pf("\tif err != nil {\n\t\tfmt.Fprintln(os.Stderr, err)\n\t\tos.Exit(1)\n\t}\n")
		g.pf("\tdefer rt.Stop()\n")
		g.pf("\tif _, err := rt.CreateMachine(%q, nil, nil); err != nil {\n\t\tfmt.Fprintln(os.Stderr, err)\n\t\tos.Exit(1)\n\t}\n", mainMachine)
		g.pf("\trt.Quiesce(5 * time.Second)\n")
		g.pf("\tif errs := rt.Errors(); len(errs) > 0 {\n\t\tos.Exit(1)\n\t}\n")
		g.pf("\tfmt.Println(\"quiescent; no machine errors\")\n")
		g.pf("}\n")
	}
	return g.b.String(), nil
}

type gen struct {
	b strings.Builder
}

func (g *gen) pf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func typeName(t ir.Type) string {
	switch t {
	case ir.TypeVoid:
		return "ir.TypeVoid"
	case ir.TypeBool:
		return "ir.TypeBool"
	case ir.TypeInt:
		return "ir.TypeInt"
	case ir.TypeEvent:
		return "ir.TypeEvent"
	case ir.TypeID:
		return "ir.TypeID"
	default:
		return "ir.TypeAny"
	}
}

func (g *gen) machine(prog *ir.Program, idx int, m *ir.Machine) {
	if m.ErasedStub {
		g.pf("\tp.Machines = append(p.Machines, erasedStub(%q, %d, len(p.Events)))\n", m.Name, m.ID)
		return
	}
	g.pf("\t{\n\t\tm := &ir.Machine{Name: %q, ID: %d, Init: %d}\n", m.Name, m.ID, m.Init)
	for _, v := range m.Vars {
		ghost := ""
		if v.Ghost {
			ghost = ", Ghost: true"
		}
		g.pf("\t\tm.Vars = append(m.Vars, ir.Var{Name: %q, Type: %s%s})\n", v.Name, typeName(v.Type), ghost)
	}
	for _, f := range m.Foreigns {
		g.pf("\t\tm.Foreigns = append(m.Foreigns, ir.Foreign{Name: %q, Result: %s, Params: %s})\n",
			f.Name, typeName(f.Result), typeList(f.Params))
	}
	for _, a := range m.Actions {
		g.pf("\t\tm.Actions = append(m.Actions, ir.Action{Name: %q, Body: %s})\n", a.Name, g.stmts(a.Body, 2))
	}
	for _, s := range m.States {
		g.state(prog, s)
	}
	g.pf("\t\tp.Machines = append(p.Machines, m)\n\t}\n")
}

func typeList(ts []ir.Type) string {
	if len(ts) == 0 {
		return "nil"
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = typeName(t)
	}
	return "[]ir.Type{" + strings.Join(parts, ", ") + "}"
}

func (g *gen) state(prog *ir.Program, s *ir.State) {
	g.pf("\t\t{\n\t\t\ts := &ir.State{Name: %q, ID: %d}\n", s.Name, s.ID)
	if !s.Deferred.IsEmpty() {
		g.pf("\t\t\ts.Deferred = ir.NewEventSet(%s)\n", eventList(s.Deferred))
	}
	if !s.Postponed.IsEmpty() {
		g.pf("\t\t\ts.Postponed = ir.NewEventSet(%s)\n", eventList(s.Postponed))
	}
	g.pf("\t\t\ts.Trans = make([]ir.Transition, len(p.Events))\n")
	g.pf("\t\t\ts.Action = make([]ir.ActionID, len(p.Events))\n")
	g.pf("\t\t\tfor i := range s.Action { s.Action[i] = ir.NoAction }\n")
	for e, tr := range s.Trans {
		if tr.Kind == ir.TransNone {
			continue
		}
		kind := "ir.TransStep"
		if tr.Kind == ir.TransCall {
			kind = "ir.TransCall"
		}
		g.pf("\t\t\ts.Trans[%d] = ir.Transition{Kind: %s, Target: %d} // on %s\n", e, kind, tr.Target, prog.Events[e].Name)
	}
	for e, a := range s.Action {
		if a == ir.NoAction {
			continue
		}
		g.pf("\t\t\ts.Action[%d] = %d // on %s\n", e, a, prog.Events[e].Name)
	}
	if len(s.Entry) > 0 {
		g.pf("\t\t\ts.Entry = %s\n", g.stmts(s.Entry, 3))
	}
	if len(s.Exit) > 0 {
		g.pf("\t\t\ts.Exit = %s\n", g.stmts(s.Exit, 3))
	}
	g.pf("\t\t\tm.States = append(m.States, s)\n\t\t}\n")
}

func eventList(s ir.EventSet) string {
	var parts []string
	for _, e := range s.Events() {
		parts = append(parts, fmt.Sprintf("%d", e))
	}
	return strings.Join(parts, ", ")
}

// stmts renders a []*ir.Stmt literal.
func (g *gen) stmts(ss []*ir.Stmt, depth int) string {
	if len(ss) == 0 {
		return "nil"
	}
	ind := strings.Repeat("\t", depth)
	var b strings.Builder
	b.WriteString("[]*ir.Stmt{\n")
	for _, s := range ss {
		fmt.Fprintf(&b, "%s\t%s,\n", ind, g.stmt(s, depth+1))
	}
	b.WriteString(ind + "}")
	return b.String()
}

func (g *gen) stmt(s *ir.Stmt, depth int) string {
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	add("Op: ir.%s", stmtOpName(s.Op))
	add("Index: %d", s.Index)
	switch s.Op {
	case ir.SAssign:
		add("Var: %d", s.Var)
		add("Expr: %s", g.expr(s.Expr))
	case ir.SNew:
		add("Var: %d", s.Var)
		add("Machine: %d", s.Machine)
		if len(s.Inits) > 0 {
			var inits []string
			for _, in := range s.Inits {
				inits = append(inits, fmt.Sprintf("{Var: %d, Expr: %s}", in.Var, g.expr(in.Expr)))
			}
			add("Inits: []ir.Init{%s}", strings.Join(inits, ", "))
		}
	case ir.SSend:
		add("Event: %d", s.Event)
		add("Target: %s", g.expr(s.Target))
		if s.Expr != nil {
			add("Expr: %s", g.expr(s.Expr))
		}
	case ir.SRaise:
		add("Event: %d", s.Event)
		if s.Expr != nil {
			add("Expr: %s", g.expr(s.Expr))
		}
	case ir.SAssert:
		add("Expr: %s", g.expr(s.Expr))
	case ir.SIf:
		add("Expr: %s", g.expr(s.Expr))
		add("Body: %s", g.stmts(s.Body, depth))
		if len(s.Else) > 0 {
			add("Else: %s", g.stmts(s.Else, depth))
		}
	case ir.SWhile:
		add("Expr: %s", g.expr(s.Expr))
		add("Body: %s", g.stmts(s.Body, depth))
	case ir.SCallState:
		add("State: %d", s.State)
	case ir.SForeign:
		add("Foreign: %d", s.Foreign)
		if len(s.Args) > 0 {
			add("Args: %s", g.exprList(s.Args))
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func stmtOpName(op ir.StmtOp) string {
	names := [...]string{"SSkip", "SAssign", "SNew", "SDelete", "SSend", "SRaise", "SLeave", "SReturn", "SAssert", "SIf", "SWhile", "SCallState", "SForeign"}
	if int(op) < len(names) {
		return names[op]
	}
	return "SSkip"
}

func exprOpName(op ir.ExprOp) string {
	names := [...]string{"EInt", "EBool", "ENull", "EThis", "EMsg", "EArg", "EChoose", "EVar", "EEvent", "ENot", "ENeg", "EBinary", "ECall"}
	if int(op) < len(names) {
		return names[op]
	}
	return "ENull"
}

func binOpName(op ir.BinOp) string {
	names := [...]string{"Add", "Sub", "Mul", "Div", "Mod", "Eq", "Neq", "Lt", "Le", "Gt", "Ge", "And", "Or"}
	if int(op) < len(names) {
		return names[op]
	}
	return "Add"
}

func (g *gen) exprList(es []*ir.Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = g.expr(e)
	}
	return "[]*ir.Expr{" + strings.Join(parts, ", ") + "}"
}

func (g *gen) expr(e *ir.Expr) string {
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	add("Op: ir.%s", exprOpName(e.Op))
	switch e.Op {
	case ir.EInt, ir.EBool:
		add("Int: %d", e.Int)
	case ir.EVar:
		add("Var: %d", e.Var)
	case ir.EEvent:
		add("Event: %d", e.Event)
	case ir.ENot, ir.ENeg:
		add("X: %s", g.expr(e.X))
	case ir.EBinary:
		add("Bin: ir.%s", binOpName(e.Bin))
		add("X: %s", g.expr(e.X))
		add("Y: %s", g.expr(e.Y))
	case ir.ECall:
		add("ForeignFn: %d", e.ForeignFn)
		if len(e.Args) > 0 {
			add("Args: %s", g.exprList(e.Args))
		}
	}
	return "&ir.Expr{" + strings.Join(parts, ", ") + "}"
}

// StubHelper is the source of the erasedStub helper appended to generated
// files that contain ghost stubs.
const stubHelper = `
// erasedStub builds the placeholder for an erased ghost machine.
func erasedStub(name string, id ir.MachineTypeID, numEvents int) *ir.Machine {
	s := &ir.State{Name: "$erased"}
	s.Trans = make([]ir.Transition, numEvents)
	s.Action = make([]ir.ActionID, numEvents)
	for i := range s.Action {
		s.Action[i] = ir.NoAction
	}
	return &ir.Machine{Name: name, ID: id, Ghost: true, ErasedStub: true, States: []*ir.State{s}}
}
`

// NeedsStubHelper reports whether prog contains erased ghost machines (the
// generated file then needs the stub helper).
func NeedsStubHelper(prog *ir.Program) bool {
	for _, m := range prog.Machines {
		if m.ErasedStub {
			return true
		}
	}
	return false
}

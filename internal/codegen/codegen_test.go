package codegen_test

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"pgo/internal/codegen"
	"pgo/internal/compile"
	"pgo/internal/ir"
	"pgo/internal/psamples"
)

func erasedProg(t *testing.T, name, src string) *ir.Program {
	t.Helper()
	prog, diags, err := compile.Erased(name, src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	return prog
}

func TestGeneratedCodeParses(t *testing.T) {
	for _, name := range []string{"pingpong", "elevator", "switchled", "ring", "boundedbuffer", "german"} {
		s, _ := psamples.ByName(name)
		prog := erasedProg(t, name, s.Source)
		src, err := codegen.Generate(prog, codegen.Options{EmitMain: true})
		if err != nil {
			t.Fatalf("%s: generate: %v", name, err)
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, name+".go", src, 0); err != nil {
			t.Fatalf("%s: generated code does not parse: %v\n%s", name, err, src)
		}
	}
}

func TestGenerateRejectsUnerased(t *testing.T) {
	prog, diags, err := compile.Source("elevator", psamples.Elevator)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	if _, err := codegen.Generate(prog, codegen.Options{}); err == nil {
		t.Fatal("unerased program accepted")
	}
}

func TestGeneratedSymbols(t *testing.T) {
	s, _ := psamples.ByName("pingpong")
	prog := erasedProg(t, "pingpong", s.Source)
	src, err := codegen.Generate(prog, codegen.Options{EmitMain: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"EvPing ir.EventID",
		"EvPong ir.EventID",
		"MachPinger ir.MachineTypeID",
		"MachPonger ir.MachineTypeID",
		"func BuildProgram() *ir.Program",
		"func NewRuntime(",
		"func main()",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGeneratedPackageOption(t *testing.T) {
	s, _ := psamples.ByName("pingpong")
	prog := erasedProg(t, "pingpong", s.Source)
	src, err := codegen.Generate(prog, codegen.Options{Package: "gen"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(strings.SplitN(src, "\n\n", 2)[1]), "package gen") {
		t.Fatalf("package clause wrong:\n%.200s", src)
	}
	if _, err := codegen.Generate(prog, codegen.Options{Package: "gen", EmitMain: true}); err == nil {
		t.Fatal("EmitMain with non-main package accepted")
	}
}

// TestGeneratedProgramRuns is the end-to-end check: generate Go for the
// erased ping-pong, compile it with the host toolchain inside this module,
// and run it to quiescence.
func TestGeneratedProgramRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	s, _ := psamples.ByName("pingpong")
	prog := erasedProg(t, "pingpong", s.Source)
	src, err := codegen.Generate(prog, codegen.Options{EmitMain: true})
	if err != nil {
		t.Fatal(err)
	}
	// The file must live inside the module to import internal packages.
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "codegen", "testdata", "gen_pingpong")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./internal/codegen/testdata/gen_pingpong")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s\n--- generated ---\n%s", err, out, src)
	}
	if !strings.Contains(string(out), "quiescent; no machine errors") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// The generated tables must be semantically identical to the in-memory
// erased program: compare a structural digest.
func TestGeneratedTablesFaithful(t *testing.T) {
	s, _ := psamples.ByName("elevator")
	prog := erasedProg(t, "elevator", s.Source)
	src, err := codegen.Generate(prog, codegen.Options{EmitMain: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every real state and transition target must be mentioned.
	for _, m := range prog.Machines {
		if m.ErasedStub {
			continue
		}
		for _, st := range m.States {
			if !strings.Contains(src, `Name: "`+st.Name+`"`) {
				t.Errorf("state %s missing from generated code", st.Name)
			}
		}
	}
	for _, e := range prog.Events {
		if !strings.Contains(src, `{Name: "`+e.Name+`"`) {
			t.Errorf("event %s missing from generated code", e.Name)
		}
	}
}

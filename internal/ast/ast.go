// Package ast defines syntax trees for the P surface language.
//
// The surface syntax is a textual rendering of the paper's core calculus
// (Figure 3) plus the conveniences the paper compiles away with a
// preprocessor: action bindings declared inside states, an "ignore" binding,
// postponed-event annotations (§3.2), foreign function declarations with
// optional ghost model bodies, and the `call` statement.
package ast

import "pgo/internal/source"

// Node is implemented by every syntax tree node.
type Node interface {
	Span() source.Span
}

// Ident is an identifier occurrence.
type Ident struct {
	Name string
	Sp   source.Span
}

func (n *Ident) Span() source.Span { return n.Sp }

// TypeKind enumerates the P types.
type TypeKind int

const (
	TypeVoid TypeKind = iota
	TypeBool
	TypeInt
	TypeEvent
	TypeID // machine identifier
)

func (k TypeKind) String() string {
	switch k {
	case TypeVoid:
		return "void"
	case TypeBool:
		return "bool"
	case TypeInt:
		return "int"
	case TypeEvent:
		return "event"
	case TypeID:
		return "id"
	default:
		return "type(?)"
	}
}

// TypeExpr is a type as written in the source.
type TypeExpr struct {
	Kind TypeKind
	Sp   source.Span
}

func (n *TypeExpr) Span() source.Span { return n.Sp }

// Program is a whole P compilation unit.
type Program struct {
	Events   []*EventDecl
	Machines []*MachineDecl
	Main     *MainDecl
	Sp       source.Span
}

func (n *Program) Span() source.Span { return n.Sp }

// EventDecl declares an event with an optional payload type.
type EventDecl struct {
	Name    *Ident
	Payload *TypeExpr // nil means no payload (void)
	Sp      source.Span
}

func (n *EventDecl) Span() source.Span { return n.Sp }

// MachineDecl declares a (possibly ghost) machine.
type MachineDecl struct {
	Ghost   bool
	Name    *Ident
	Vars    []*VarDecl
	Actions []*ActionDecl
	States  []*StateDecl
	Foreign []*ForeignDecl
	Sp      source.Span
}

func (n *MachineDecl) Span() source.Span { return n.Sp }

// VarDecl declares a machine-local variable.
type VarDecl struct {
	Ghost bool
	Name  *Ident
	Type  *TypeExpr
	Sp    source.Span
}

func (n *VarDecl) Span() source.Span { return n.Sp }

// ActionDecl names a reusable statement.
type ActionDecl struct {
	Name *Ident
	Body *Block
	Sp   source.Span
}

func (n *ActionDecl) Span() source.Span { return n.Sp }

// ForeignDecl introduces a foreign (host-language) function in machine scope.
// Model, if present, is an erasable P body used during verification in place
// of the host implementation.
type ForeignDecl struct {
	Name   *Ident
	Params []*TypeExpr
	Result *TypeExpr // nil means void
	Model  *Block    // nil means no verification model (treated as skip/⊥)
	Sp     source.Span
}

func (n *ForeignDecl) Span() source.Span { return n.Sp }

// StateDecl declares a control state.
type StateDecl struct {
	Name      *Ident
	Entry     *Block   // nil means skip
	Exit      *Block   // nil means skip
	Deferred  []*Ident // deferred events
	Postponed []*Ident // postponed events (liveness annotation, §3.2)
	Trans     []*TransDecl
	Sp        source.Span
}

func (n *StateDecl) Span() source.Span { return n.Sp }

// TransKind distinguishes the handlers a state can attach to an event.
type TransKind int

const (
	// TransStep is a step transition: on E goto S.
	TransStep TransKind = iota
	// TransCall is a call transition: on E push S.
	TransCall
	// TransAction binds an action: on E do A.
	TransAction
	// TransIgnore drops the event: on E ignore (sugar for a no-op action).
	TransIgnore
)

// TransDecl is a transition or action binding declared in a state.
type TransDecl struct {
	Kind   TransKind
	Event  *Ident
	Target *Ident // state for Step/Call, action for Action, nil for Ignore
	Sp     source.Span
}

func (n *TransDecl) Span() source.Span { return n.Sp }

// MainDecl is the program's initialization statement: the machine the
// verifier instantiates first, with variable initializers.
type MainDecl struct {
	Machine *Ident
	Inits   []*Init
	Sp      source.Span
}

func (n *MainDecl) Span() source.Span { return n.Sp }

// Init is a single "x = expr" initializer in new or main.
type Init struct {
	Name *Ident
	Expr Expr
	Sp   source.Span
}

func (n *Init) Span() source.Span { return n.Sp }

// ---------------------------------------------------------------- statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Block is a braced statement sequence.
type Block struct {
	Stmts []Stmt
	Sp    source.Span
}

func (n *Block) Span() source.Span { return n.Sp }
func (n *Block) stmt()             {}

// SkipStmt is the no-op statement.
type SkipStmt struct{ Sp source.Span }

func (n *SkipStmt) Span() source.Span { return n.Sp }
func (n *SkipStmt) stmt()             {}

// AssignStmt is "x = expr;".
type AssignStmt struct {
	Name *Ident
	Expr Expr
	Sp   source.Span
}

func (n *AssignStmt) Span() source.Span { return n.Sp }
func (n *AssignStmt) stmt()             {}

// NewStmt is "x = new M(inits);".
type NewStmt struct {
	Name    *Ident // assignment target
	Machine *Ident
	Inits   []*Init
	Sp      source.Span
}

func (n *NewStmt) Span() source.Span { return n.Sp }
func (n *NewStmt) stmt()             {}

// DeleteStmt terminates the executing machine.
type DeleteStmt struct{ Sp source.Span }

func (n *DeleteStmt) Span() source.Span { return n.Sp }
func (n *DeleteStmt) stmt()             {}

// SendStmt is "send target, Event[, payload];".
type SendStmt struct {
	Target  Expr
	Event   *Ident
	Payload Expr // nil means null
	Sp      source.Span
}

func (n *SendStmt) Span() source.Span { return n.Sp }
func (n *SendStmt) stmt()             {}

// RaiseStmt is "raise Event[, payload];".
type RaiseStmt struct {
	Event   *Ident
	Payload Expr // nil means null
	Sp      source.Span
}

func (n *RaiseStmt) Span() source.Span { return n.Sp }
func (n *RaiseStmt) stmt()             {}

// LeaveStmt jumps to the end of the entry statement to await an event.
type LeaveStmt struct{ Sp source.Span }

func (n *LeaveStmt) Span() source.Span { return n.Sp }
func (n *LeaveStmt) stmt()             {}

// ReturnStmt pops the current state off the call stack.
type ReturnStmt struct{ Sp source.Span }

func (n *ReturnStmt) Span() source.Span { return n.Sp }
func (n *ReturnStmt) stmt()             {}

// AssertStmt is "assert expr;".
type AssertStmt struct {
	Expr Expr
	Sp   source.Span
}

func (n *AssertStmt) Span() source.Span { return n.Sp }
func (n *AssertStmt) stmt()             {}

// IfStmt is "if expr { } [else ...]".
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt, or nil
	Sp   source.Span
}

func (n *IfStmt) Span() source.Span { return n.Sp }
func (n *IfStmt) stmt()             {}

// WhileStmt is "while expr { }".
type WhileStmt struct {
	Cond Expr
	Body *Block
	Sp   source.Span
}

func (n *WhileStmt) Span() source.Span { return n.Sp }
func (n *WhileStmt) stmt()             {}

// CallStmt is "call S;" — push state S with a saved continuation.
type CallStmt struct {
	State *Ident
	Sp    source.Span
}

func (n *CallStmt) Span() source.Span { return n.Sp }
func (n *CallStmt) stmt()             {}

// ExprStmt is a foreign call used as a statement: "f(args);".
type ExprStmt struct {
	Call *CallExpr
	Sp   source.Span
}

func (n *ExprStmt) Span() source.Span { return n.Sp }
func (n *ExprStmt) stmt()             {}

// --------------------------------------------------------------- expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// LitKind enumerates literal expression forms.
type LitKind int

const (
	LitInt LitKind = iota
	LitTrue
	LitFalse
	LitNull // the ⊥ constant
	LitThis
	LitMsg
	LitArg
	LitChoose // the nondeterministic "*" expression
)

// Lit is a literal or special-variable expression.
type Lit struct {
	Kind LitKind
	Int  int64 // valid when Kind == LitInt
	Sp   source.Span
}

func (n *Lit) Span() source.Span { return n.Sp }
func (n *Lit) expr()             {}

// NameExpr references a variable, an event (as a value), or is resolved
// later by the type checker.
type NameExpr struct {
	Name *Ident
	Sp   source.Span
}

func (n *NameExpr) Span() source.Span { return n.Sp }
func (n *NameExpr) expr()             {}

// UnaryOp enumerates unary operators.
type UnaryOp int

const (
	OpNot UnaryOp = iota // !
	OpNeg                // -
)

func (op UnaryOp) String() string {
	if op == OpNot {
		return "!"
	}
	return "-"
}

// UnaryExpr is "!e" or "-e".
type UnaryExpr struct {
	Op UnaryOp
	X  Expr
	Sp source.Span
}

func (n *UnaryExpr) Span() source.Span { return n.Sp }
func (n *UnaryExpr) expr()             {}

// BinaryOp enumerates binary operators.
type BinaryOp int

const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

func (op BinaryOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "op(?)"
}

// BinaryExpr is "x op y".
type BinaryExpr struct {
	Op   BinaryOp
	X, Y Expr
	Sp   source.Span
}

func (n *BinaryExpr) Span() source.Span { return n.Sp }
func (n *BinaryExpr) expr()             {}

// CallExpr is a foreign function call "f(args)".
type CallExpr struct {
	Name *Ident
	Args []Expr
	Sp   source.Span
}

func (n *CallExpr) Span() source.Span { return n.Sp }
func (n *CallExpr) expr()             {}

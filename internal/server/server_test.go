package server_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pgo/internal/compile"
	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/psamples"
	prt "pgo/internal/runtime"
	"pgo/internal/server"
)

// Tests for the sharded actor server: virtual-actor FIFO over the shard
// pool, admission control and 429 shedding, quarantine after a spent
// restart budget (without wedging the shard), the per-shard circuit
// breaker, and drain semantics.

func erased(t testing.TB, name, src string) *ir.Program {
	t.Helper()
	prog, diags, err := compile.Erased(name, src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, diags.String())
	}
	return prog
}

// gateProgram wedges its shard on demand: Go parks the machine inside a
// foreign call until the test releases it, so pending-event depth builds.
const gateProgram = `
event Go; event Inc(int); event unit;
machine G {
  foreign wait(): void;
  state S {
    entry { skip; }
    on Go do DoWait;
    on Inc do Nop;
  }
  action DoWait { wait(); }
  action Nop { skip; }
}
main G();
`

func gate(entered chan<- struct{}, release <-chan struct{}) core.ForeignMap {
	return core.ForeignMap{
		"G.wait": func(ctx any, args []core.Value) (core.Value, error) {
			entered <- struct{}{}
			<-release
			return core.Null, nil
		},
	}
}

const panicProgram = `
event Boom; event Poke; event unit;
machine M {
  var count: int;
  foreign explode(): void;
  state S {
    entry { count = 0; }
    on Boom do DoBoom;
    on Poke do Bump;
  }
  action DoBoom { explode(); }
  action Bump { count = count + 1; }
}
main M();
`

func explodingForeign() core.ForeignMap {
	return core.ForeignMap{
		"M.explode": func(ctx any, args []core.Value) (core.Value, error) {
			panic("kaboom")
		},
	}
}

// obsProgram reports every received payload to the host, in handling order.
const obsProgram = `
event Ev(int); event unit;
machine O {
  foreign obs(int): void;
  state S {
    entry { skip; }
    on Ev do Obs;
  }
  action Obs { obs(arg); }
}
main O();
`

// Events sent to one machine are handled in send order even though the
// machine has no goroutine of its own: bursts interleave with deliveries
// (park, drain, rerun) and FIFO must survive the inbox→queue handoffs.
func TestPerMachineFIFO(t *testing.T) {
	prog := erased(t, "obs", obsProgram)
	var mu sync.Mutex
	var got []int64
	srv, err := server.New(prog, server.Options{
		Shards: 4,
		Foreign: core.ForeignMap{
			"O.obs": func(ctx any, args []core.Value) (core.Value, error) {
				n, _ := args[0].AsInt()
				mu.Lock()
				got = append(got, n)
				mu.Unlock()
				return core.Null, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	id, err := srv.CreateMachine("O", nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if err := srv.Send(id, "Ev", core.IntVal(int64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if !srv.Quiesce(10 * time.Second) {
		t.Fatal("no quiescence")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("observed %d events, want %d: %v", len(got), n, got)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("event %d handled out of order: got payload %d (full order %v)", i, v, got)
		}
	}
}

// Elevator sessions across the whole pool: many machines, the §2 door
// cycle each, no machine errors, and coherent totals (depth returns to
// zero, delivered == processed once quiescent).
func TestServeElevatorSessions(t *testing.T) {
	prog := erased(t, "elevator", psamples.Elevator)
	srv, err := server.New(prog, server.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	h := server.NewHandler(srv)
	const sessions = 32
	script := []string{"OpenDoor", "DoorOpened", "TimerFired"}
	for i := 0; i < sessions; i++ {
		id, err := srv.CreateMachine("Elevator", nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range script {
			if err := srv.Send(id, ev, core.Null); err != nil {
				t.Fatalf("session %d send %s: %v", i, ev, err)
			}
		}
	}
	if !srv.Quiesce(10 * time.Second) {
		t.Fatal("no quiescence")
	}
	if errs := srv.Errors(); len(errs) != 0 {
		t.Fatalf("machine errors: %v", errs)
	}
	v := h.Varz()
	if v.Totals.Machines != sessions {
		t.Fatalf("machines = %d, want %d", v.Totals.Machines, sessions)
	}
	if v.Totals.QueueDepth != 0 {
		t.Fatalf("queue_depth = %d after quiescence, want 0", v.Totals.QueueDepth)
	}
	want := int64(sessions * len(script))
	if v.Totals.EventsDelivered != want || v.Totals.EventsProcessed != want {
		t.Fatalf("delivered/processed = %d/%d, want %d/%d",
			v.Totals.EventsDelivered, v.Totals.EventsProcessed, want, want)
	}
}

// Over the watermark, ingress is shed with HTTP 429 plus a Retry-After
// header and a precise retry_after_ms hint in the body; /varz counts the
// rejections at the edge.
func TestIngressShed429RetryAfter(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := server.New(prog, server.Options{
		Shards:         1,
		QueueHighWater: 4,
		Foreign:        gate(entered, release),
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := server.NewHandler(srv)
	ts := httptest.NewServer(h)
	defer ts.Close()
	defer srv.Stop()
	defer close(release)

	id, err := srv.CreateMachine("G", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Send(id, "Go", core.Null); err != nil {
		t.Fatal(err)
	}
	<-entered // shard 0 is wedged in the handler; depth accumulates

	var resp *http.Response
	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"event":"Inc","payload":%d}`, i)
		r, err := http.Post(fmt.Sprintf("%s/machines/%d/send", ts.URL, id), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusTooManyRequests {
			resp = r
			break
		}
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: status %d, want 202 or 429", i, r.StatusCode)
		}
	}
	if resp == nil {
		t.Fatal("no 429 despite a wedged shard and watermark 4")
	}
	defer resp.Body.Close()
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	var body struct {
		Error        string `json:"error"`
		RetryAfterMs int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RetryAfterMs <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0 (body error: %s)", body.RetryAfterMs, body.Error)
	}
	if v := h.Varz(); v.HTTPShed == 0 {
		t.Fatalf("varz http_shed = 0 after a 429 (varz: %+v)", v)
	}

	// The plain API surfaces the same rejection as a typed ShedError.
	var shed *server.ShedError
	if err := srv.Send(id, "Inc", core.IntVal(999)); !errors.As(err, &shed) {
		t.Fatalf("over-watermark Send = %v, want ShedError", err)
	}
}

// A machine that exhausts its restart budget is quarantined: it stops
// running and blackholes ingress (410 over HTTP), while shardmates keep
// processing — the poisoned machine must not wedge its shard.
func TestQuarantineAfterRestartBudget(t *testing.T) {
	prog := erased(t, "panic", panicProgram)
	srv, err := server.New(prog, server.Options{
		Shards:       1, // victim and bystander share the one shard
		Foreign:      explodingForeign(),
		Restart:      prt.RestartPolicy{MaxRestarts: 1},
		BreakerTrips: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	h := server.NewHandler(srv)
	victim, err := srv.CreateMachine("M", nil)
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := srv.CreateMachine("M", nil)
	if err != nil {
		t.Fatal(err)
	}

	// First panic: restarted within budget, usable again.
	if err := srv.Send(victim, "Boom", core.Null); err != nil {
		t.Fatal(err)
	}
	if !srv.Quiesce(10 * time.Second) {
		t.Fatal("no quiescence after first panic")
	}
	if err := srv.Send(victim, "Poke", core.Null); err != nil {
		t.Fatalf("restarted machine rejected a send: %v", err)
	}
	if !srv.Quiesce(10 * time.Second) {
		t.Fatal("no quiescence after poking the restarted machine")
	}

	// Second panic: budget spent, quarantined.
	if err := srv.Send(victim, "Boom", core.Null); err != nil {
		t.Fatal(err)
	}
	if !srv.Quiesce(10 * time.Second) {
		t.Fatal("no quiescence after second panic — the shard is wedged")
	}
	info, err := srv.MachineInfo(victim)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != "quarantined" {
		t.Fatalf("victim status = %q, want quarantined", info.Status)
	}
	if err := srv.Send(victim, "Poke", core.Null); !errors.Is(err, server.ErrQuarantined) {
		t.Fatalf("send to quarantined machine = %v, want ErrQuarantined", err)
	}

	// Over HTTP the quarantined id is Gone, not retryable.
	ts := httptest.NewServer(h)
	defer ts.Close()
	r, err := http.Post(fmt.Sprintf("%s/machines/%d/send", ts.URL, victim), "application/json",
		strings.NewReader(`{"event":"Poke"}`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Fatalf("send to quarantined machine = HTTP %d, want 410", r.StatusCode)
	}

	// The shard still serves its other machines.
	if err := srv.Send(bystander, "Poke", core.Null); err != nil {
		t.Fatal(err)
	}
	if !srv.Quiesce(10 * time.Second) {
		t.Fatal("no quiescence after poking the bystander — shard wedged by quarantined machine")
	}
	if info, err := srv.MachineInfo(bystander); err != nil || info.Status != "idle" {
		t.Fatalf("bystander info = %+v, %v; want idle", info, err)
	}

	v := h.Varz()
	if v.Totals.Panics != 2 || v.Totals.Restarts != 1 || v.Totals.Quarantines != 1 {
		t.Fatalf("panics/restarts/quarantines = %d/%d/%d, want 2/1/1",
			v.Totals.Panics, v.Totals.Restarts, v.Totals.Quarantines)
	}
}

// A burst of quarantines opens the shard's circuit breaker: ingress on
// that shard sheds with a retryable BreakerError until the cooldown ends.
func TestCircuitBreakerOpensAndCools(t *testing.T) {
	prog := erased(t, "panic", panicProgram)
	srv, err := server.New(prog, server.Options{
		Shards:          1,
		Foreign:         explodingForeign(),
		Restart:         prt.RestartPolicy{MaxRestarts: -1}, // quarantine on first panic
		BreakerTrips:    1,
		BreakerCooldown: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	id, err := srv.CreateMachine("M", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Send(id, "Boom", core.Null); err != nil {
		t.Fatal(err)
	}
	if !srv.Quiesce(10 * time.Second) {
		t.Fatal("no quiescence after the panic")
	}

	var brk *server.BreakerError
	if _, err := srv.CreateMachine("M", nil); !errors.As(err, &brk) {
		t.Fatalf("ingress with open breaker = %v, want BreakerError", err)
	}
	if brk.RetryAfter <= 0 {
		t.Fatalf("BreakerError.RetryAfter = %v, want > 0", brk.RetryAfter)
	}

	// After the cooldown the shard admits again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := srv.CreateMachine("M", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after its cooldown")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Drain on a quiescent server reaches quiescence, then ingress reports
// closed.
func TestDrainThenIngressClosed(t *testing.T) {
	prog := erased(t, "obs", obsProgram)
	srv, err := server.New(prog, server.Options{
		Foreign: core.ForeignMap{
			"O.obs": func(ctx any, args []core.Value) (core.Value, error) { return core.Null, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := srv.CreateMachine("O", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := srv.Send(id, "Ev", core.IntVal(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !srv.Drain(10 * time.Second) {
		t.Fatal("drain of a healthy server missed its deadline")
	}
	if err := srv.Send(id, "Ev", core.IntVal(99)); !errors.Is(err, server.ErrClosed) {
		t.Fatalf("post-drain Send = %v, want ErrClosed", err)
	}
	if _, err := srv.CreateMachine("O", nil); !errors.Is(err, server.ErrClosed) {
		t.Fatalf("post-drain CreateMachine = %v, want ErrClosed", err)
	}
}

// A drain whose deadline expires while a machine is wedged in a handler
// returns false instead of deadlocking (the partial-drain exit 3 path).
func TestDrainTimeoutOnWedgedMachine(t *testing.T) {
	prog := erased(t, "gate", gateProgram)
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := server.New(prog, server.Options{
		Shards:  1,
		Foreign: gate(entered, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := srv.CreateMachine("G", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Send(id, "Go", core.Null); err != nil {
		t.Fatal(err)
	}
	<-entered

	drained := make(chan bool, 1)
	go func() { drained <- srv.Drain(100 * time.Millisecond) }()
	// Give the deadline time to expire while the machine is still wedged,
	// then unwedge so Drain's Stop can join the shard loop.
	time.Sleep(300 * time.Millisecond)
	close(release)
	select {
	case ok := <-drained:
		if ok {
			t.Fatal("Drain reported quiescence despite the wedged machine")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain deadlocked after its deadline expired")
	}
}

// Machine-created machines spread over the pool and run the whole election
// internally: one ingress create grows the ring and elects a leader.
func TestRingElectionAcrossShards(t *testing.T) {
	prog := erased(t, "ring", psamples.Ring(5))
	srv, err := server.New(prog, server.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	h := server.NewHandler(srv)
	if _, err := srv.CreateMachine("Node", map[string]core.Value{
		"myid":  core.IntVal(1),
		"total": core.IntVal(5),
	}); err != nil {
		t.Fatal(err)
	}
	if !srv.Quiesce(10 * time.Second) {
		t.Fatal("no quiescence — the election never settled")
	}
	if errs := srv.Errors(); len(errs) != 0 {
		t.Fatalf("machine errors: %v", errs)
	}
	v := h.Varz()
	if v.Totals.Machines != 5 {
		t.Fatalf("machines = %d, want 5 ring nodes", v.Totals.Machines)
	}
	if v.Totals.QueueDepth != 0 {
		t.Fatalf("queue_depth = %d after quiescence, want 0", v.Totals.QueueDepth)
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"pgo/internal/core"
)

// Handler is the HTTP/JSON ingress for a Server. Requests map onto the
// host-facing API — create a machine, send it an event, inspect it — and
// admission-control rejections map onto retryable status codes (429 with a
// jittered Retry-After for shed load, 503 for an open breaker or a drain).
type Handler struct {
	s   *Server
	mux *http.ServeMux

	// Edge counters for /varz and the final drain flush.
	requests atomic.Int64 // ingress requests (create + send)
	shed     atomic.Int64 // rejected 429 by admission control
}

// NewHandler builds the ingress routes for s.
func NewHandler(s *Server) *Handler {
	h := &Handler{s: s, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /machines", h.create)
	h.mux.HandleFunc("POST /machines/{id}/send", h.send)
	h.mux.HandleFunc("GET /machines/{id}", h.inspect)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	h.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() || s.closed.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	h.mux.HandleFunc("GET /varz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.Varz())
	})
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// Varz is the /varz introspection snapshot: host process identity, then
// per-shard coherent counter snapshots and their sum.
type Varz struct {
	Program    string  `json:"program"`
	UptimeS    float64 `json:"uptime_s"`
	Draining   bool    `json:"draining"`
	ShedPolicy string  `json:"shed_policy"`
	Overflow   string  `json:"overflow_policy"`
	Watermark  int     `json:"queue_high_water"`
	MaxInbox   int     `json:"max_inbox"`
	// HTTPRequests / HTTPShed count at the edge: every create/send request,
	// and the subset rejected 429. Breaker/drain 503s are not "shed".
	HTTPRequests int64          `json:"http_requests"`
	HTTPShed     int64          `json:"http_shed"`
	Errors       int            `json:"machine_errors"`
	Shards       []ShardMetrics `json:"shards"`
	Totals       ShardMetrics   `json:"totals"`
}

// Varz assembles the snapshot. Per-shard numbers are each coherent; the
// totals row sums them (coherent per shard, not across shards).
func (h *Handler) Varz() Varz {
	s := h.s
	v := Varz{
		Program:      s.prog.Name,
		UptimeS:      time.Since(s.start).Seconds(),
		Draining:     s.draining.Load(),
		ShedPolicy:   s.opts.Shed.String(),
		Overflow:     s.opts.Overflow.String(),
		Watermark:    s.opts.QueueHighWater,
		MaxInbox:     s.opts.MaxInbox,
		HTTPRequests: h.requests.Load(),
		HTTPShed:     h.shed.Load(),
		Errors:       len(s.Errors()),
	}
	v.Totals.Shard = -1
	for _, sh := range s.shards {
		st := sh.metrics()
		v.Shards = append(v.Shards, st)
		v.Totals.Machines += st.Machines
		v.Totals.QueueDepth += st.QueueDepth
		v.Totals.EventsDelivered += st.EventsDelivered
		v.Totals.EventsDeduped += st.EventsDeduped
		v.Totals.EventsProcessed += st.EventsProcessed
		v.Totals.EventsOverflowed += st.EventsOverflowed
		v.Totals.EventsShed += st.EventsShed
		v.Totals.Bursts += st.Bursts
		v.Totals.Panics += st.Panics
		v.Totals.Restarts += st.Restarts
		v.Totals.Quarantines += st.Quarantines
		v.Totals.BreakerOpens += st.BreakerOpens
		v.Totals.BreakerOpen = v.Totals.BreakerOpen || st.BreakerOpen
	}
	return v
}

// MachineInfo is the GET /machines/{id} view of one virtual actor.
type MachineInfo struct {
	ID    core.MachineID `json:"id"`
	Type  string         `json:"type"`
	Shard int            `json:"shard"`
	// Status: "idle" (parked), "queued" (scheduled on its shard),
	// "running" (a burst is executing now), or "quarantined".
	Status   string `json:"status"`
	State    string `json:"state"` // current P state; "" while running
	Inbox    int    `json:"inbox"`
	Restarts int    `json:"restarts"`
}

// MachineInfo inspects a live machine. The P state is readable only while
// the machine is not mid-burst (the shard loop owns the configuration
// during a burst); a running machine reports its status without a state.
func (s *Server) MachineInfo(id core.MachineID) (MachineInfo, error) {
	m := s.lookup(id)
	if m == nil {
		return MachineInfo{}, &NotFoundError{ID: id}
	}
	info := MachineInfo{ID: id, Type: s.prog.Machines[m.typ].Name, Shard: m.sh.idx}
	m.mu.Lock()
	defer m.mu.Unlock()
	info.Inbox = len(m.inbox)
	info.Restarts = m.restarts
	switch {
	case m.quarantined:
		info.Status = "quarantined"
	case m.running:
		info.Status = "running"
	case m.scheduled:
		info.Status = "queued"
	default:
		info.Status = "idle"
	}
	if !m.running {
		if st := m.cfg.CurrentState(); st >= 0 {
			info.State = s.prog.Machines[m.typ].States[st].Name
		}
	}
	return info, nil
}

func (h *Handler) create(w http.ResponseWriter, r *http.Request) {
	h.requests.Add(1)
	var req struct {
		Type  string         `json:"type"`
		Inits map[string]any `json:"inits"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("bad request body: "+err.Error(), 0))
		return
	}
	if req.Type == "" {
		writeJSON(w, http.StatusBadRequest, errBody(`missing "type"`, 0))
		return
	}
	inits := map[string]core.Value{}
	for name, raw := range req.Inits {
		v, err := jsonValue(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errBody(fmt.Sprintf("init %s: %v", name, err), 0))
			return
		}
		inits[name] = v
	}
	id, err := h.s.CreateMachine(req.Type, inits)
	if err != nil {
		h.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "shard": h.s.shardOf(id).idx})
}

func (h *Handler) send(w http.ResponseWriter, r *http.Request) {
	h.requests.Add(1)
	id, err := pathID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error(), 0))
		return
	}
	var req struct {
		Event   string `json:"event"`
		Payload any    `json:"payload"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("bad request body: "+err.Error(), 0))
		return
	}
	if req.Event == "" {
		writeJSON(w, http.StatusBadRequest, errBody(`missing "event"`, 0))
		return
	}
	payload, err := jsonValue(req.Payload)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("payload: "+err.Error(), 0))
		return
	}
	if err := h.s.Send(id, req.Event, payload); err != nil {
		h.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "event": req.Event})
}

func (h *Handler) inspect(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error(), 0))
		return
	}
	info, err := h.s.MachineInfo(id)
	if err != nil {
		h.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func pathID(r *http.Request) (core.MachineID, error) {
	n, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad machine id %q", r.PathValue("id"))
	}
	return core.MachineID(n), nil
}

// jsonValue maps a decoded JSON payload onto a P value: null→null,
// bool→bool, integral number→int. P event payloads are ints, bools, ids —
// anything else is a 400.
func jsonValue(raw any) (core.Value, error) {
	switch x := raw.(type) {
	case nil:
		return core.Null, nil
	case bool:
		return core.BoolVal(x), nil
	case float64:
		if x != math.Trunc(x) || math.Abs(x) > 1<<53 {
			return core.Null, fmt.Errorf("payload %v is not an integer", x)
		}
		return core.IntVal(int64(x)), nil
	default:
		return core.Null, fmt.Errorf("unsupported payload type %T (want null, bool, or integer)", raw)
	}
}

// writeErr maps server errors onto HTTP semantics:
//
//	ShedError          429 + Retry-After (counted as edge shed)
//	BreakerError       503 + Retry-After
//	ErrDraining/Closed 503
//	ErrQuarantined     410 (the id is permanently out of service)
//	NotFoundError      404
//	anything else      400
func (h *Handler) writeErr(w http.ResponseWriter, err error) {
	var shed *ShedError
	var brk *BreakerError
	var nf *NotFoundError
	switch {
	case errors.As(err, &shed):
		h.shed.Add(1)
		setRetryAfter(w, shed.RetryAfter)
		writeJSON(w, http.StatusTooManyRequests, errBody(err.Error(), shed.RetryAfter))
	case errors.As(err, &brk):
		setRetryAfter(w, brk.RetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, errBody(err.Error(), brk.RetryAfter))
	case errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errBody(err.Error(), 0))
	case errors.Is(err, ErrQuarantined):
		writeJSON(w, http.StatusGone, errBody(err.Error(), 0))
	case errors.As(err, &nf):
		writeJSON(w, http.StatusNotFound, errBody(err.Error(), 0))
	default:
		writeJSON(w, http.StatusBadRequest, errBody(err.Error(), 0))
	}
}

// setRetryAfter writes the standard integer-seconds Retry-After header,
// rounded up so a sub-second hint is never truncated to "retry now".
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// errBody carries the precise retry hint in the body (the header is
// coarse, integer seconds).
func errBody(msg string, retry time.Duration) map[string]any {
	b := map[string]any{"error": msg}
	if retry > 0 {
		b["retry_after_ms"] = retry.Milliseconds()
	}
	return b
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

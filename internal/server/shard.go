package server

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pgo/internal/core"
)

// defaultShards sizes the event-loop pool: one loop per CPU up to 8. More
// shards than CPUs buys nothing (the loops are CPU-bound between waits) and
// dilutes per-shard batching.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ShardMetrics is one shard's coherent counter snapshot — every field is
// read under the same mutex that the loop increments under, so invariants
// like EventsProcessed <= EventsDelivered hold within one snapshot.
type ShardMetrics struct {
	Shard    int   `json:"shard"`
	Machines int64 `json:"machines"`
	// QueueDepth is the pending-event count (undrained inboxes plus
	// machine-local queues) admission control watermarks.
	QueueDepth       int64 `json:"queue_depth"`
	EventsDelivered  int64 `json:"events_delivered"`
	EventsDeduped    int64 `json:"events_deduped"`
	EventsProcessed  int64 `json:"events_processed"`
	EventsOverflowed int64 `json:"events_overflowed"`
	// EventsShed counts events dropped by load shedding after admission:
	// sends blackholed at a quarantined machine, and internal sends dropped
	// by ShedRejectNewest. Edge-level 429s are counted by the HTTP layer.
	EventsShed   int64 `json:"events_shed"`
	Bursts       int64 `json:"bursts"`
	Panics       int64 `json:"panics"`
	Restarts     int64 `json:"restarts"`
	Quarantines  int64 `json:"quarantines"`
	BreakerOpens int64 `json:"breaker_opens"`
	BreakerOpen  bool  `json:"breaker_open"`
}

// shard is one event loop of the pool. Every machine hashing here has all
// its bursts executed by this loop, one at a time — that serialization is
// what preserves run-to-completion atomicity without per-machine goroutines.
type shard struct {
	srv *Server
	idx int

	mu   sync.Mutex
	cond *sync.Cond
	runq []*machine

	// Breaker state, under mu: quarantine timestamps inside the window,
	// and the instant until which the breaker sheds ingress.
	quarTimes    []time.Time
	breakerUntil time.Time

	// Counters under their own leaf mutex so hot increments never contend
	// with runq scheduling.
	smu sync.Mutex
	st  ShardMetrics
}

func newShard(s *Server, idx int) *shard {
	sh := &shard{srv: s, idx: idx}
	sh.cond = sync.NewCond(&sh.mu)
	sh.st.Shard = idx
	return sh
}

// count runs f over the shard counters under the counter lock (leaf lock:
// never acquire another lock inside f).
func (sh *shard) count(f func(*ShardMetrics)) {
	sh.smu.Lock()
	f(&sh.st)
	sh.smu.Unlock()
}

// metrics returns a coherent snapshot.
func (sh *shard) metrics() ShardMetrics {
	sh.mu.Lock()
	open := time.Now().Before(sh.breakerUntil)
	sh.mu.Unlock()
	sh.smu.Lock()
	st := sh.st
	sh.smu.Unlock()
	st.BreakerOpen = open
	return st
}

// depth reads the watermarked pending-event count.
func (sh *shard) depth() int64 {
	sh.smu.Lock()
	d := sh.st.QueueDepth
	sh.smu.Unlock()
	return d
}

// admit is admission control for ingress landing on this shard: the circuit
// breaker first, then the queue-depth watermark. Machine-to-machine traffic
// does not pass through here (see srvWorld.SendEvent for RejectNewest).
func (sh *shard) admit() error {
	sh.mu.Lock()
	wait := time.Until(sh.breakerUntil)
	sh.mu.Unlock()
	if wait > 0 {
		return &BreakerError{Shard: sh.idx, RetryAfter: wait}
	}
	hw := sh.srv.opts.QueueHighWater
	if hw > 0 {
		if d := sh.depth(); d >= int64(hw) {
			return &ShedError{Shard: sh.idx, Depth: d, Watermark: hw, RetryAfter: sh.srv.retryAfter(d, hw)}
		}
	}
	return nil
}

// recordQuarantine feeds the circuit breaker: BreakerTrips quarantines
// inside BreakerWindow open the breaker for BreakerCooldown.
func (sh *shard) recordQuarantine() {
	trips := sh.srv.opts.BreakerTrips
	if trips < 0 {
		return
	}
	now := time.Now()
	cut := now.Add(-sh.srv.opts.BreakerWindow)
	sh.mu.Lock()
	keep := sh.quarTimes[:0]
	for _, t := range sh.quarTimes {
		if t.After(cut) {
			keep = append(keep, t)
		}
	}
	sh.quarTimes = append(keep, now)
	if len(sh.quarTimes) >= trips {
		sh.breakerUntil = now.Add(sh.srv.opts.BreakerCooldown)
		sh.quarTimes = sh.quarTimes[:0]
		sh.mu.Unlock()
		sh.count(func(st *ShardMetrics) { st.BreakerOpens++ })
		return
	}
	sh.mu.Unlock()
}

// push appends m to the run queue and wakes the loop. The caller has
// already marked m scheduled and bumped the busy count.
func (sh *shard) push(m *machine) {
	sh.mu.Lock()
	sh.runq = append(sh.runq, m)
	sh.cond.Signal()
	sh.mu.Unlock()
}

// loop is the shard's event loop: pop a runnable machine, run one
// run-to-completion burst, repeat. One goroutine per shard for the life of
// the server.
func (sh *shard) loop() {
	defer sh.srv.wg.Done()
	x := &core.Exec{
		Prog:    sh.srv.prog,
		World:   (*srvWorld)(sh.srv),
		Foreign: sh.srv.opts.Foreign,
	}
	for {
		sh.mu.Lock()
		for len(sh.runq) == 0 && !sh.srv.closed.Load() {
			sh.cond.Wait()
		}
		if sh.srv.closed.Load() {
			// Park remaining queued machines so the busy count settles.
			q := sh.runq
			sh.runq = nil
			sh.mu.Unlock()
			for _, m := range q {
				m.mu.Lock()
				m.scheduled = false
				m.mu.Unlock()
				sh.srv.addBusy(-1)
			}
			return
		}
		m := sh.runq[0]
		copy(sh.runq, sh.runq[1:])
		sh.runq = sh.runq[:len(sh.runq)-1]
		sh.mu.Unlock()
		sh.run(x, m)
	}
}

// run executes one burst of m on this shard's loop: drain the inbox into
// the machine's queue (with ⊕ dedup against it), run to completion, then
// dispatch on the outcome. Because the loop runs m's bursts one at a time
// and the inbox append order is preserved by the drain, per-machine FIFO
// delivery holds with no machine-owned goroutine.
func (sh *shard) run(x *core.Exec, m *machine) {
	m.mu.Lock()
	if m.halted || m.quarantined {
		m.scheduled = false
		m.mu.Unlock()
		sh.srv.addBusy(-1)
		return
	}
	dropped := m.drainLocked()
	qBefore := len(m.cfg.Queue)
	m.running = true
	cfg := m.cfg
	m.mu.Unlock()
	if dropped > 0 {
		sh.count(func(st *ShardMetrics) { st.EventsDeduped += int64(dropped); st.QueueDepth -= int64(dropped) })
	}

	out := runBurst(x, cfg, sh)

	// cfg.Queue only shrinks during a burst (self-sends land in the inbox),
	// so the shrink is exactly the events consumed — accurate even when a
	// panic loses the outcome's Dequeued list.
	consumed := qBefore - len(cfg.Queue)
	sh.count(func(st *ShardMetrics) {
		st.Bursts++
		st.EventsProcessed += int64(consumed)
		st.QueueDepth -= int64(consumed)
	})

	switch out.Kind {
	case core.OutBlocked:
		m.mu.Lock()
		m.running = false
		if len(m.inbox) > 0 {
			// Raced with a delivery: stay scheduled, go around again.
			m.mu.Unlock()
			sh.push(m)
			return
		}
		m.scheduled = false
		m.mu.Unlock()
		sh.srv.addBusy(-1)
	case core.OutHalted:
		sh.srv.halt(m)
	case core.OutError:
		sh.srv.recordError(out.Err)
		if out.Err.Kind == core.ErrPanic {
			sh.superviseAfterPanic(m)
			return
		}
		// A P-level error (unhandled event, foreign type error, ...) is a
		// program bug, not a transient fault: halt, do not restart.
		sh.srv.halt(m)
	default:
		sh.srv.recordError(&core.Err{
			Kind:    core.ErrDivergence,
			Machine: m.id,
			Detail:  fmt.Sprintf("unexpected outcome %v from run-to-completion", out.Kind),
		})
		sh.srv.halt(m)
	}
}

// runBurst wraps one run-to-completion burst in a recover so a panicking
// handler becomes an ErrPanic outcome on this machine instead of killing
// the shard loop (and every other machine homed on it).
func runBurst(x *core.Exec, cfg *core.Config, sh *shard) (out core.Outcome) {
	defer func() {
		if r := recover(); r != nil {
			sh.count(func(st *ShardMetrics) { st.Panics++ })
			st := ""
			if s := cfg.CurrentState(); s >= 0 {
				st = x.Prog.Machines[cfg.Type].States[s].Name
			}
			out = core.Outcome{Kind: core.OutError, Err: &core.Err{
				Kind:    core.ErrPanic,
				Machine: cfg.ID,
				Type:    x.Prog.Machines[cfg.Type].Name,
				State:   st,
				Detail:  fmt.Sprintf("recovered: %v", r),
			}}
		}
	}()
	return x.Run(cfg, nil, sh.srv.opts.MaxHandlerSteps, false)
}

// superviseAfterPanic applies the restart budget to a panicked machine.
// Within budget, the machine gets a fresh configuration (same id, same
// initializers — the crashed incarnation's local queue is lost, inbox
// events delivered while it was down are kept) and is rescheduled after a
// capped exponential backoff. The backoff is a timer, never a sleep on the
// shard loop: the loop moves on to other machines immediately, so one
// crash-looping machine cannot stall its shardmates. Over budget, the
// machine is quarantined and the shard breaker is fed.
func (sh *shard) superviseAfterPanic(m *machine) {
	pol := sh.srv.opts.Restart
	m.mu.Lock()
	if m.restarts >= pol.MaxRestarts || pol.MaxRestarts < 0 {
		m.mu.Unlock()
		sh.srv.quarantine(m)
		return
	}
	m.restarts++
	restarts := m.restarts
	// The crashed incarnation's machine-local queue dies with it.
	lost := int64(len(m.cfg.Queue))
	m.cfg = core.NewConfig(sh.srv.prog, m.id, m.typ, m.vals)
	m.running = false
	// m stays scheduled (and the server stays busy) across the backoff so
	// drain waits for the restart burst.
	m.mu.Unlock()
	sh.count(func(st *ShardMetrics) {
		st.Restarts++
		st.QueueDepth -= lost
	})

	d := pol.Backoff
	if d > 0 {
		shift := restarts - 1
		if shift > 16 {
			shift = 16
		}
		d <<= shift
		if pol.MaxBackoff > 0 && d > pol.MaxBackoff {
			d = pol.MaxBackoff
		}
	}
	reschedule := func() {
		if sh.srv.closed.Load() {
			m.mu.Lock()
			m.scheduled = false
			m.mu.Unlock()
			sh.srv.addBusy(-1)
			return
		}
		sh.push(m)
	}
	if d <= 0 {
		reschedule()
		return
	}
	time.AfterFunc(d, reschedule)
}

// drainLocked moves inbox entries into the machine-local queue with ⊕
// dedup, preserving arrival order; it returns how many entries the dedup
// dropped. Caller holds m.mu.
func (m *machine) drainLocked() (dropped int) {
	for _, q := range m.inbox {
		dup := false
		for _, p := range m.cfg.Queue {
			if p == q {
				dup = true
				break
			}
		}
		if dup {
			dropped++
			continue
		}
		m.cfg.Queue = append(m.cfg.Queue, q)
	}
	m.inbox = m.inbox[:0]
	return dropped
}

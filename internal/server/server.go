// Package server hosts a compiled, erased P program as a long-lived sharded
// actor service — the production serving path the paper's §4 runtime points
// at (the USB driver shipping in Windows 8 is the same artifact class: a
// compiled P program embedded in a long-running host).
//
// Machine instances are virtual actors: there is no goroutine per machine.
// Instead a fixed pool of shards (one event-loop goroutine each) multiplexes
// every instance; a machine id hashes to its home shard and every burst of
// that machine runs on that shard's loop, which preserves run-to-completion
// atomicity and per-machine FIFO delivery without per-machine threads. This
// is what lets one process host orders of magnitude more machine instances
// than goroutine-per-machine (the internal/runtime architecture) allows.
//
// The robustness surface:
//
//   - Admission control: per-shard pending-event depth is watermarked.
//     Over the watermark, ingress is shed with a retryable ShedError (HTTP
//     429 + jittered Retry-After); the RejectNewest policy additionally
//     drops over-watermark machine-to-machine sends so internal
//     amplification cannot grow memory either. Bounded per-machine inboxes
//     (internal/runtime's overflow policies) cap each actor.
//   - Supervision: a panic escaping a handler is recovered on the shard
//     loop, and the machine restarts under a restart budget with
//     exponential backoff (the backoff wait is a timer, not a shard stall).
//     A machine that exhausts its budget is quarantined: it stops running
//     and blackholes further events instead of wedging its shard or
//     cascading ErrSendDeleted into its peers.
//   - Circuit breaker: a burst of quarantines on one shard opens that
//     shard's breaker, shedding its ingress for a cooldown so a poisoned
//     workload cannot grind the shard through restart cycles.
//   - Graceful drain: Drain stops ingress, lets in-flight work run to
//     quiescence under a deadline, then stops the shard pool.
package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pgo/internal/core"
	"pgo/internal/ir"
	"pgo/internal/runtime"
)

// ErrClosed is returned once the server has stopped.
var ErrClosed = errors.New("server: stopped")

// ErrDraining is returned to ingress while the server drains; in-flight
// machine work continues.
var ErrDraining = errors.New("server: draining")

// ErrQuarantined is returned to ingress targeting a machine that exhausted
// its restart budget.
var ErrQuarantined = errors.New("server: machine quarantined")

// NotFoundError reports an ingress target machine that does not exist (never
// created, or halted and removed).
type NotFoundError struct{ ID core.MachineID }

func (e *NotFoundError) Error() string { return fmt.Sprintf("server: machine #%d does not exist", e.ID) }

// ShedError is admission control rejecting ingress: the target shard's
// pending-event depth is at or over the watermark. RetryAfter is a jittered
// backoff hint, scaled by how far over the watermark the shard is.
type ShedError struct {
	Shard      int
	Depth      int64
	Watermark  int
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("server: shard %d shedding load (depth %d >= watermark %d), retry after %s",
		e.Shard, e.Depth, e.Watermark, e.RetryAfter)
}

// BreakerError is a shard circuit breaker rejecting ingress after a burst of
// quarantines; RetryAfter is the remaining cooldown.
type BreakerError struct {
	Shard      int
	RetryAfter time.Duration
}

func (e *BreakerError) Error() string {
	return fmt.Sprintf("server: shard %d circuit breaker open, retry after %s", e.Shard, e.RetryAfter)
}

// ShedPolicy selects what load shedding applies to when a shard is over its
// watermark.
type ShedPolicy int

const (
	// ShedRejectIngress sheds only at the edge: over-watermark ingress gets
	// a ShedError, machine-to-machine sends are never shed (per-machine
	// inbox bounds still apply). In-flight work is favored over new work.
	ShedRejectIngress ShedPolicy = iota
	// ShedRejectNewest sheds the newest event wherever it comes from:
	// ingress gets a ShedError, and an over-watermark machine-to-machine
	// send is dropped in transit (the sender cannot tell, like a transport
	// loss), so internal amplification is bounded too.
	ShedRejectNewest
)

func (p ShedPolicy) String() string {
	switch p {
	case ShedRejectIngress:
		return "reject-ingress"
	case ShedRejectNewest:
		return "reject-newest"
	default:
		return fmt.Sprintf("shed(%d)", int(p))
	}
}

// ParseShedPolicy maps the pserve flag spellings to a policy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "reject-ingress":
		return ShedRejectIngress, nil
	case "reject-newest":
		return ShedRejectNewest, nil
	default:
		return 0, fmt.Errorf("unknown shed policy %q (want reject-ingress or reject-newest)", s)
	}
}

// Options configures a Server. The zero value gets production-leaning
// defaults from New (bounded queues, a restart budget, breaker on).
type Options struct {
	// Shards is the size of the fixed event-loop pool (default
	// min(8, GOMAXPROCS)). Machine ids hash onto shards.
	Shards int
	// QueueHighWater is the per-shard pending-event watermark at which
	// admission control starts shedding (default 1024; < 0 disables).
	QueueHighWater int
	// Shed selects what the watermark sheds (default reject-ingress).
	Shed ShedPolicy
	// MaxInbox bounds each machine's not-yet-drained inbox (default 256;
	// < 0 unbounded). Overflow picks the at-bound behavior.
	MaxInbox int
	// Overflow is the full-inbox policy (default drop-newest).
	// OverflowBlock is rejected: a blocking send would stall a shard loop.
	Overflow runtime.OverflowPolicy
	// Restart supervises panicked machines (default: 3 restarts, 1ms
	// backoff doubling to 100ms). MaxRestarts < 0 disables restarts.
	Restart runtime.RestartPolicy
	// BreakerTrips quarantines within BreakerWindow open a shard's circuit
	// breaker for BreakerCooldown (defaults 3 / 10s / 5s; BreakerTrips < 0
	// disables the breaker).
	BreakerTrips    int
	BreakerWindow   time.Duration
	BreakerCooldown time.Duration
	// Foreign supplies host implementations of foreign functions.
	Foreign core.ForeignEnv
	// MaxHandlerSteps bounds one run-to-completion burst (0 = default).
	MaxHandlerSteps int
	// OnError is invoked (on the shard goroutine) for machine errors.
	OnError func(*core.Err)
	// Seed seeds the jittered Retry-After hints (0 = time-based).
	Seed int64
}

// Server hosts one erased P program across a shard pool.
type Server struct {
	prog   *ir.Program
	opts   Options
	shards []*shard
	start  time.Time

	mu       sync.RWMutex
	machines map[core.MachineID]*machine
	nextID   core.MachineID

	draining atomic.Bool
	closed   atomic.Bool
	stopOnce sync.Once
	wg       sync.WaitGroup

	// busy counts scheduled machines (queued, running, or waiting out a
	// restart backoff); qcond is broadcast when it reaches zero.
	qmu   sync.Mutex
	qcond *sync.Cond
	busy  int

	emu  sync.Mutex
	errs []*core.Err

	jmu sync.Mutex
	rng *rand.Rand
}

// machine is one virtual actor. Its configuration is owned by the shard
// loop while running; mu guards the inbox and lifecycle flags, and orders
// external reads of the configuration while the machine is parked.
type machine struct {
	id  core.MachineID
	typ ir.MachineTypeID
	sh  *shard

	mu          sync.Mutex
	cfg         *core.Config
	inbox       []core.QEntry
	vals        []core.InitVal
	scheduled   bool // on the runq, running, or parked for a restart backoff
	running     bool // a shard loop is executing a burst right now
	halted      bool
	quarantined bool
	restarts    int
}

// New creates a server for prog, which must be erased (ir.Erase) like any
// runtime-executed program.
func New(prog *ir.Program, opts Options) (*Server, error) {
	for _, m := range prog.Machines {
		if m.Ghost && !m.ErasedStub {
			return nil, fmt.Errorf("server: program %s has live ghost machine %s; apply ir.Erase before serving", prog.Name, m.Name)
		}
	}
	if opts.Overflow == runtime.OverflowBlock {
		return nil, errors.New("server: OverflowBlock would stall a shard event loop; use drop-newest, drop-oldest, or error")
	}
	if opts.Shards <= 0 {
		opts.Shards = defaultShards()
	}
	if opts.QueueHighWater == 0 {
		opts.QueueHighWater = 1024
	}
	if opts.MaxInbox == 0 {
		opts.MaxInbox = 256
	}
	if opts.MaxInbox > 0 && opts.Overflow == runtime.OverflowUnbounded {
		opts.Overflow = runtime.OverflowDropNewest
	}
	if opts.Restart == (runtime.RestartPolicy{}) {
		opts.Restart = runtime.RestartPolicy{MaxRestarts: 3, Backoff: time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	}
	if opts.BreakerTrips == 0 {
		opts.BreakerTrips = 3
	}
	if opts.BreakerWindow <= 0 {
		opts.BreakerWindow = 10 * time.Second
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Server{
		prog:     prog,
		opts:     opts,
		start:    time.Now(),
		machines: map[core.MachineID]*machine{},
		nextID:   1,
		rng:      rand.New(rand.NewSource(seed)),
	}
	s.qcond = sync.NewCond(&s.qmu)
	for i := 0; i < opts.Shards; i++ {
		s.shards = append(s.shards, newShard(s, i))
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.loop()
	}
	return s, nil
}

// Program returns the hosted program.
func (s *Server) Program() *ir.Program { return s.prog }

// shardOf maps a machine id to its home shard: a consistent hash over the
// fixed pool, so sequential session ids spread instead of striping.
func (s *Server) shardOf(id core.MachineID) *shard {
	x := uint64(id)
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return s.shards[x%uint64(len(s.shards))]
}

// CreateMachine instantiates machine type name as a new virtual actor and
// schedules its entry burst, subject to admission control on its home
// shard. It is the ingress analog of runtime.CreateMachine.
func (s *Server) CreateMachine(name string, inits map[string]core.Value) (core.MachineID, error) {
	mt, ok := s.prog.MachineByName(name)
	if !ok {
		return 0, fmt.Errorf("server: unknown machine type %s", name)
	}
	if mt.ErasedStub {
		return 0, fmt.Errorf("server: machine type %s is ghost (erased); only real machines can be served", name)
	}
	var vals []core.InitVal
	for varName, v := range inits {
		vid, ok := mt.VarByName(varName)
		if !ok {
			return 0, fmt.Errorf("server: machine %s has no variable %s", name, varName)
		}
		vals = append(vals, core.InitVal{Var: vid, Val: v})
	}
	return s.spawn(mt.ID, vals, false)
}

// spawn allocates an id, registers the machine on its home shard, and
// schedules the entry burst. Ingress (internal=false) is admission
// controlled; machine-created machines (internal=true) are not — they are
// in-flight work, bounded by their creators' own admission.
func (s *Server) spawn(t ir.MachineTypeID, vals []core.InitVal, internal bool) (core.MachineID, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if !internal && s.draining.Load() {
		return 0, ErrDraining
	}
	mt := s.prog.Machines[t]
	if mt.ErasedStub {
		return 0, fmt.Errorf("server: cannot create erased ghost machine %s", mt.Name)
	}
	s.mu.Lock()
	id := s.nextID
	sh := s.shardOf(id)
	if !internal {
		if err := sh.admit(); err != nil {
			s.mu.Unlock()
			return 0, err
		}
	}
	s.nextID++
	m := &machine{id: id, typ: t, sh: sh, vals: vals}
	m.cfg = core.NewConfig(s.prog, id, t, vals)
	m.scheduled = true // the entry burst is pending
	s.machines[id] = m
	s.mu.Unlock()
	sh.count(func(st *ShardMetrics) { st.Machines++ })
	s.addBusy(1)
	sh.push(m)
	return id, nil
}

// Send maps one ingress request to a send: admission control on the target
// machine's home shard, then a bounded-inbox enqueue and a wakeup. The
// enqueue never blocks (OverflowBlock is rejected at New), so ingress
// latency is bounded by lock hold times, not machine execution.
func (s *Server) Send(id core.MachineID, event string, payload core.Value) error {
	e, ok := s.prog.EventByName(event)
	if !ok {
		return fmt.Errorf("server: unknown event %s", event)
	}
	if s.closed.Load() {
		return ErrClosed
	}
	if s.draining.Load() {
		return ErrDraining
	}
	m := s.lookup(id)
	if m == nil {
		return &NotFoundError{ID: id}
	}
	if err := m.sh.admit(); err != nil {
		return err
	}
	delivered, found := s.deliver(m, e, payload)
	if !found {
		if s.lookup(id) == nil {
			return &NotFoundError{ID: id}
		}
		return ErrQuarantined
	}
	_ = delivered // dedup or overflow drops are not ingress errors
	return nil
}

// lookup returns the live machine for id, or nil.
func (s *Server) lookup(id core.MachineID) *machine {
	s.mu.RLock()
	m := s.machines[id]
	s.mu.RUnlock()
	return m
}

// deliver enqueues (e, v) into m's inbox under the bounded-inbox policy and
// schedules m on its shard. found=false means the machine is halted or
// quarantined.
func (s *Server) deliver(m *machine, e ir.EventID, v core.Value) (delivered, found bool) {
	opts := &s.opts
	sh := m.sh
	m.mu.Lock()
	if m.halted || m.quarantined {
		m.mu.Unlock()
		return false, false
	}
	for _, q := range m.inbox {
		if q.Event == e && q.Val == v {
			m.mu.Unlock()
			sh.count(func(st *ShardMetrics) { st.EventsDeduped++ })
			return false, true
		}
	}
	if opts.MaxInbox > 0 && len(m.inbox) >= opts.MaxInbox {
		switch opts.Overflow {
		case runtime.OverflowDropOldest:
			copy(m.inbox, m.inbox[1:])
			m.inbox = m.inbox[:len(m.inbox)-1]
			m.inbox = append(m.inbox, core.QEntry{Event: e, Val: v})
			wake := !m.scheduled
			m.scheduled = true
			m.mu.Unlock()
			// Depth is unchanged: one in, one out.
			sh.count(func(st *ShardMetrics) { st.EventsOverflowed++; st.EventsDelivered++ })
			if wake {
				s.addBusy(1)
				sh.push(m)
			}
			return true, true
		default: // DropNewest, Error
			var err *core.Err
			if opts.Overflow == runtime.OverflowError {
				err = &core.Err{
					Kind:    core.ErrInboxOverflow,
					Machine: m.id,
					Type:    s.prog.Machines[m.typ].Name,
					Event:   e,
					HasEv:   true,
					Detail:  fmt.Sprintf("inbox at its bound of %d", opts.MaxInbox),
				}
			}
			m.mu.Unlock()
			sh.count(func(st *ShardMetrics) { st.EventsOverflowed++ })
			if err != nil {
				s.recordError(err)
			}
			return false, true
		}
	}
	m.inbox = append(m.inbox, core.QEntry{Event: e, Val: v})
	wake := !m.scheduled
	m.scheduled = true
	m.mu.Unlock()
	sh.count(func(st *ShardMetrics) { st.EventsDelivered++; st.QueueDepth++ })
	if wake {
		s.addBusy(1)
		sh.push(m)
	}
	return true, true
}

// srvWorld adapts Server to core.World for bursts running on shard loops.
type srvWorld Server

// CreateMachine implements core.World: dynamic creation from inside a
// handler (`new M(...)`). Internal creations bypass admission control.
func (w *srvWorld) CreateMachine(t ir.MachineTypeID, vals []core.InitVal) (core.MachineID, *core.Err) {
	s := (*Server)(w)
	id, err := s.spawn(t, vals, true)
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return 0, &core.Err{Kind: core.ErrClosed, Type: s.prog.Machines[t].Name}
		}
		return 0, &core.Err{Kind: core.ErrStub, Type: s.prog.Machines[t].Name, Detail: err.Error()}
	}
	return id, nil
}

// SendEvent implements core.World: machine-to-machine delivery. A
// quarantined target blackholes the event (delivered, no error) — the
// alternative, reporting it deleted, would cascade ErrSendDeleted errors
// through every peer of a quarantined machine. Under ShedRejectNewest an
// over-watermark send is dropped in transit and counted as shed.
func (w *srvWorld) SendEvent(target core.MachineID, e ir.EventID, v core.Value) (delivered, found bool) {
	s := (*Server)(w)
	m := s.lookup(target)
	if m == nil {
		return false, false
	}
	m.mu.Lock()
	quarantined := m.quarantined
	m.mu.Unlock()
	if quarantined {
		m.sh.count(func(st *ShardMetrics) { st.EventsShed++ })
		return true, true
	}
	if s.opts.Shed == ShedRejectNewest && s.opts.QueueHighWater > 0 && m.sh.depth() >= int64(s.opts.QueueHighWater) {
		m.sh.count(func(st *ShardMetrics) { st.EventsShed++ })
		return true, true
	}
	return s.deliver(m, e, v)
}

// recordError logs err and invokes OnError.
func (s *Server) recordError(err *core.Err) {
	s.emu.Lock()
	s.errs = append(s.errs, err)
	s.emu.Unlock()
	if s.opts.OnError != nil {
		s.opts.OnError(err)
	}
}

// Errors returns the machine errors collected so far.
func (s *Server) Errors() []*core.Err {
	s.emu.Lock()
	defer s.emu.Unlock()
	return append([]*core.Err(nil), s.errs...)
}

// halt tombstones m: it is removed from addressing, pending events are
// discarded from the depth accounting, and the busy count drops.
func (s *Server) halt(m *machine) {
	m.mu.Lock()
	m.running = false
	m.scheduled = false
	m.halted = true
	lost := int64(len(m.inbox) + len(m.cfg.Queue))
	m.inbox = nil
	m.mu.Unlock()
	s.mu.Lock()
	delete(s.machines, m.id)
	s.mu.Unlock()
	m.sh.count(func(st *ShardMetrics) { st.Machines--; st.QueueDepth -= lost })
	s.addBusy(-1)
}

// quarantine parks m for good: it stays addressable (blackholing events)
// but never runs again, so a poisoned machine cannot wedge its shard.
func (s *Server) quarantine(m *machine) {
	m.mu.Lock()
	m.running = false
	m.scheduled = false
	m.quarantined = true
	lost := int64(len(m.inbox) + len(m.cfg.Queue))
	m.inbox = nil
	m.cfg.Queue = nil
	m.mu.Unlock()
	m.sh.count(func(st *ShardMetrics) { st.Quarantines++; st.QueueDepth -= lost })
	m.sh.recordQuarantine()
	s.addBusy(-1)
}

// ---------------------------------------------------------- quiescence

func (s *Server) addBusy(delta int) {
	s.qmu.Lock()
	s.busy += delta
	if s.busy == 0 {
		s.qcond.Broadcast()
	}
	s.qmu.Unlock()
}

// Quiesce blocks until no machine is queued, running, or waiting out a
// restart backoff, or until the timeout expires. Quiescence is stable only
// if ingress is stopped (Drain stops it first).
func (s *Server) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	expired := time.AfterFunc(timeout, func() {
		s.qmu.Lock()
		s.qcond.Broadcast()
		s.qmu.Unlock()
	})
	defer expired.Stop()
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for s.busy > 0 {
		if !time.Now().Before(deadline) {
			return false
		}
		s.qcond.Wait()
	}
	return true
}

// Drain gracefully shuts the server down: ingress starts returning
// ErrDraining immediately, in-flight machine work (including internal sends
// and creations) runs to quiescence or the deadline, then the shard pool
// stops. It reports whether quiescence was reached in time — the partial-
// drain signal pserve turns into exit code 3.
func (s *Server) Drain(timeout time.Duration) bool {
	s.draining.Store(true)
	ok := s.Quiesce(timeout)
	s.Stop()
	return ok
}

// Stop shuts the shard pool down; pending events are discarded. Idempotent,
// safe to call concurrently; every caller blocks until the loops exit.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		s.closed.Store(true)
		for _, sh := range s.shards {
			sh.mu.Lock()
			sh.cond.Broadcast()
			sh.mu.Unlock()
		}
	})
	s.wg.Wait()
}

// retryAfter builds a jittered backoff hint scaled by overload: the farther
// past the watermark the shard is, the longer the hint, with ±50% jitter so
// a thundering herd of shed clients does not resynchronize.
func (s *Server) retryAfter(depth int64, watermark int) time.Duration {
	base := 25 * time.Millisecond
	if watermark > 0 && depth > int64(watermark) {
		over := time.Duration(depth-int64(watermark)) * base / time.Duration(watermark)
		if over > 2*time.Second {
			over = 2 * time.Second
		}
		base += over
	}
	s.jmu.Lock()
	j := time.Duration(s.rng.Int63n(int64(base)))
	s.jmu.Unlock()
	return base/2 + j
}

package types

import (
	"pgo/internal/ast"
	"pgo/internal/source"
)

// Lint emits warnings for suspicious but legal constructs. It runs after a
// successful Check over the same tables:
//
//   - control states unreachable from the machine's initial state through
//     its transitions and call statements;
//   - events that no machine ever sends or raises (handlers for them are
//     dead) and events no state handles or defers (every delivery would be
//     an unhandled-event error — the verifier will find the concrete trace,
//     but the lint flags it statically);
//   - variables that are written but never read;
//   - actions never bound by any state;
//   - machines never instantiated (neither by new nor as the main machine).
//
// All findings are warnings: the paper's tool chain relies on verification
// for semantic errors, and these are hygiene signals.
func Lint(chk *Checked, diags *source.DiagList) {
	if chk.AST == nil {
		return
	}
	l := &linter{chk: chk, diags: diags}
	l.run()
}

type linter struct {
	chk   *Checked
	diags *source.DiagList

	sentEvents    map[string]bool // sent or raised somewhere
	handledEvents map[string]bool // handled or deferred by some state
	instantiated  map[string]bool
	// newTargets are variables holding machine references created by new;
	// holding such a reference without reading it is the idiomatic way to
	// keep a subsystem alive conceptually, so it is not reported.
	newTargets map[*VarSym]bool
	curMachine *MachineSym
}

func (l *linter) run() {
	l.sentEvents = map[string]bool{}
	l.handledEvents = map[string]bool{}
	l.instantiated = map[string]bool{}
	l.newTargets = map[*VarSym]bool{}
	if l.chk.MainMachine != nil {
		l.instantiated[l.chk.MainMachine.Name] = true
	}

	for _, m := range l.chk.Machines {
		l.scanMachine(m)
	}
	for _, m := range l.chk.Machines {
		l.lintMachine(m)
	}
	for _, e := range l.chk.Events {
		if !l.sentEvents[e.Name] {
			l.diags.Codef(source.Warning, CodeEventNeverSent, e.Decl.Name.Sp, "event %s is never sent or raised", e.Name)
		}
		if !l.handledEvents[e.Name] {
			l.diags.Codef(source.Warning, CodeEventNeverHandled, e.Decl.Name.Sp, "event %s is never handled or deferred by any state", e.Name)
		}
	}
	for _, m := range l.chk.Machines {
		if !l.instantiated[m.Name] {
			l.diags.Codef(source.Warning, CodeMachineNeverNew, m.Decl.Name.Sp, "machine %s is never instantiated", m.Name)
		}
	}
}

// scanMachine records global usage facts (sends, instantiations, handlers).
func (l *linter) scanMachine(m *MachineSym) {
	l.curMachine = m
	for _, s := range m.States {
		for _, id := range s.Decl.Deferred {
			l.handledEvents[id.Name] = true
		}
		for _, tr := range s.Decl.Trans {
			l.handledEvents[tr.Event.Name] = true
		}
		l.scanBlock(s.Decl.Entry)
		l.scanBlock(s.Decl.Exit)
	}
	for _, a := range m.Actions {
		l.scanBlock(a.Decl.Body)
	}
	for _, f := range m.Foreigns {
		l.scanBlock(f.Decl.Model)
	}
}

func (l *linter) scanBlock(b *ast.Block) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		l.scanStmt(s)
	}
}

func (l *linter) scanStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		l.scanBlock(s)
	case *ast.SendStmt:
		l.sentEvents[s.Event.Name] = true
	case *ast.RaiseStmt:
		l.sentEvents[s.Event.Name] = true
	case *ast.NewStmt:
		l.instantiated[s.Machine.Name] = true
		if l.curMachine != nil {
			if v, ok := l.curMachine.VarByName[s.Name.Name]; ok {
				l.newTargets[v] = true
			}
		}
	case *ast.IfStmt:
		l.scanBlock(s.Then)
		if s.Else != nil {
			l.scanStmt(s.Else)
		}
	case *ast.WhileStmt:
		l.scanBlock(s.Body)
	}
}

// lintMachine emits the per-machine findings.
func (l *linter) lintMachine(m *MachineSym) {
	// State reachability through transitions and call statements.
	adj := make([][]int, len(m.States))
	for _, s := range m.States {
		var out []int
		for _, tr := range s.Decl.Trans {
			if tr.Target == nil {
				continue
			}
			if t, ok := m.StateByName[tr.Target.Name]; ok && (tr.Kind == ast.TransStep || tr.Kind == ast.TransCall) {
				out = append(out, t.ID)
			}
		}
		collectCallTargets(m, s.Decl.Entry, &out)
		collectCallTargets(m, s.Decl.Exit, &out)
		adj[s.ID] = out
	}
	// Call statements inside actions can enter states from any state that
	// binds the action; approximate by treating them as reachable from
	// every state that binds the action.
	for _, s := range m.States {
		for _, tr := range s.Decl.Trans {
			if tr.Kind != ast.TransAction || tr.Target == nil {
				continue
			}
			if a, ok := m.ActionByName[tr.Target.Name]; ok {
				var out []int
				collectCallTargets(m, a.Decl.Body, &out)
				adj[s.ID] = append(adj[s.ID], out...)
			}
		}
	}
	reached := make([]bool, len(m.States))
	stack := []int{0}
	reached[0] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range adj[n] {
			if !reached[t] {
				reached[t] = true
				stack = append(stack, t)
			}
		}
	}
	for _, s := range m.States {
		if !reached[s.ID] {
			l.diags.Codef(source.Warning, CodeStateUnreachable, s.Decl.Name.Sp, "state %s is unreachable from the initial state of machine %s", s.Name, m.Name)
		}
	}

	// Write-only variables: reads are exactly the resolved NameExpr uses
	// (assignment targets are plain identifiers, not NameExprs).
	readVars := map[*VarSym]bool{}
	for _, v := range l.chk.VarUse {
		readVars[v] = true
	}
	for _, v := range m.Vars {
		if !readVars[v] && !l.newTargets[v] {
			l.diags.Codef(source.Warning, CodeVarNeverRead, v.Decl.Name.Sp, "variable %s of machine %s is never read", v.Name, m.Name)
		}
	}

	// Unbound actions.
	bound := map[string]bool{}
	for _, s := range m.States {
		for _, tr := range s.Decl.Trans {
			if tr.Kind == ast.TransAction && tr.Target != nil {
				bound[tr.Target.Name] = true
			}
		}
	}
	for _, a := range m.Actions {
		if !bound[a.Name] {
			l.diags.Codef(source.Warning, CodeActionNeverBound, a.Decl.Name.Sp, "action %s of machine %s is never bound to an event", a.Name, m.Name)
		}
	}
}

func collectCallTargets(m *MachineSym, b *ast.Block, out *[]int) {
	if b == nil {
		return
	}
	var walk func(ss []ast.Stmt)
	walk = func(ss []ast.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ast.Block:
				walk(s.Stmts)
			case *ast.CallStmt:
				if t, ok := m.StateByName[s.State.Name]; ok {
					*out = append(*out, t.ID)
				}
			case *ast.IfStmt:
				walk(s.Then.Stmts)
				if s.Else != nil {
					walk([]ast.Stmt{s.Else})
				}
			case *ast.WhileStmt:
				walk(s.Body.Stmts)
			}
		}
	}
	walk(b.Stmts)
}

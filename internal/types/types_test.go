package types_test

import (
	"strings"
	"testing"

	"pgo/internal/parser"
	"pgo/internal/source"
	"pgo/internal/types"
)

// checkSrc runs the full frontend and returns the diagnostics.
func checkSrc(t *testing.T, src string) *source.DiagList {
	t.Helper()
	var diags source.DiagList
	prog := parser.Parse(src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse failed:\n%s", diags.String())
	}
	types.Check(prog, &diags)
	return &diags
}

func wantError(t *testing.T, src, substr string) {
	t.Helper()
	diags := checkSrc(t, src)
	if !diags.HasErrors() {
		t.Fatalf("expected error containing %q, got none", substr)
	}
	if !strings.Contains(diags.String(), substr) {
		t.Fatalf("diagnostics missing %q:\n%s", substr, diags.String())
	}
}

func wantClean(t *testing.T, src string) {
	t.Helper()
	diags := checkSrc(t, src)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors:\n%s", diags.String())
	}
}

// ------------------------------------------------ uniqueness (§3.3 check 1)

func TestDuplicateEvent(t *testing.T) {
	wantError(t, `
event E; event E;
machine M { state S { entry { skip; } } }
main M();
`, "event E redeclared")
}

func TestDuplicateMachine(t *testing.T) {
	wantError(t, `
event E;
machine M { state S { entry { skip; } } }
machine M { state S { entry { skip; } } }
main M();
`, "machine M redeclared")
}

func TestDuplicateState(t *testing.T) {
	wantError(t, `
event E;
machine M {
  state S { entry { skip; } }
  state S { entry { skip; } }
}
main M();
`, "state S redeclared")
}

func TestDuplicateVarAndAction(t *testing.T) {
	wantError(t, `
event E;
machine M {
  var x: int;
  var x: bool;
  state S { entry { skip; } }
}
main M();
`, "variable x redeclared")
	wantError(t, `
event E;
machine M {
  action A { skip; }
  action A { skip; }
  state S { entry { skip; } }
}
main M();
`, "action A redeclared")
}

// --------------------------------------------- determinism (§3.3 check 2)

func TestDuplicateTransitionOnEvent(t *testing.T) {
	wantError(t, `
event E;
machine M {
  state S {
    entry { skip; }
    on E goto S;
    on E push S;
  }
}
main M();
`, "already has a transition")
}

func TestDuplicateActionBinding(t *testing.T) {
	wantError(t, `
event E;
machine M {
  action A { skip; }
  state S {
    entry { skip; }
    on E do A;
    on E ignore;
  }
}
main M();
`, "already binds an action")
}

// A transition plus an action binding on the same event is legal: the
// transition takes priority (ACTION rule precondition).
func TestTransitionPlusActionAllowed(t *testing.T) {
	wantClean(t, `
event E;
machine M {
  action A { skip; }
  state S {
    entry { skip; }
    on E goto S;
    on E do A;
  }
}
main M();
`)
}

// ----------------------------------------------------- nondeterminism rules

func TestChooseForbiddenInRealMachine(t *testing.T) {
	wantError(t, `
event E;
machine M {
  var b: bool;
  state S { entry { b = *; } }
}
main M();
`, "only allowed in ghost machines")
}

func TestChooseAllowedInGhost(t *testing.T) {
	wantClean(t, `
event E;
ghost machine G {
  var b: bool;
  state S { entry { b = *; } }
}
main G();
`)
}

// -------------------------------------------------------- ghost flow (§3.3)

const ghostPrelude = `
event E;
ghost machine G {
  var client: id;
  state S { entry { skip; } }
}
`

func TestGhostIDSeparation(t *testing.T) {
	// A ghost machine id must land in a ghost variable.
	wantError(t, ghostPrelude+`
machine M {
  var g: id;
  state S { entry { g = new G(); } }
}
main M();
`, "must be stored in a ghost variable")
	// And a real machine id must not land in a ghost variable.
	wantError(t, ghostPrelude+`
machine M {
  ghost var r: id;
  state S { entry { r = new M(); } }
}
main M();
`, "must not be stored in ghost variable")
	// The proper forms are clean.
	wantClean(t, ghostPrelude+`
machine M {
  ghost var g: id;
  var r: id;
  state S { entry { g = new G(); r = new M(); } }
}
main M();
`)
}

func TestGhostToRealAssignment(t *testing.T) {
	wantError(t, ghostPrelude+`
machine M {
  ghost var gx: int;
  var x: int;
  state S { entry { x = gx + 1; } }
}
main M();
`, "cannot assign ghost expression")
	// Ghost-to-ghost is fine, as is real-to-ghost.
	wantClean(t, ghostPrelude+`
machine M {
  ghost var gx: int;
  ghost var gy: int;
  var x: int;
  state S { entry { gy = gx; gx = x; } }
}
main M();
`)
}

func TestGhostControlFlowForbidden(t *testing.T) {
	wantError(t, ghostPrelude+`
machine M {
  ghost var gb: bool;
  state S { entry { if gb { skip; } } }
}
main M();
`, "erasure would change control flow")
}

func TestAssertMayUseGhost(t *testing.T) {
	wantClean(t, ghostPrelude+`
machine M {
  ghost var gx: int;
  state S { entry { assert gx == 0; } }
}
main M();
`)
}

func TestGhostPayloadToRealTarget(t *testing.T) {
	wantError(t, `
event E(int);
machine M {
  ghost var gx: int;
  var m: id;
  state S { entry { m = new M(); send m, E, gx; } }
}
main M();
`, "may not depend on ghost state")
	// Sends to ghost targets may carry anything — the send is erased.
	wantClean(t, `
event E(int);
ghost machine G {
  state S { entry { skip; } }
}
machine M {
  ghost var g: id;
  ghost var gx: int;
  state S { entry { g = new G(); send g, E, gx; } }
}
main G();
`)
}

// -------------------------------------------------------------- typing

func TestPayloadTyping(t *testing.T) {
	wantError(t, `
event E(int);
machine M {
  var m: id;
  state S { entry { m = new M(); send m, E, true; } }
}
main M();
`, "must be int")
	wantError(t, `
event E;
machine M {
  var m: id;
  state S { entry { m = new M(); send m, E, 3; } }
}
main M();
`, "carries no payload")
	// null is accepted for any payload slot.
	wantClean(t, `
event E;
machine M {
  var m: id;
  state S { entry { m = new M(); send m, E, null; } }
}
main M();
`)
}

func TestConditionTyping(t *testing.T) {
	wantError(t, `
event E;
machine M {
  var x: int;
  state S { entry { if x { skip; } } }
}
main M();
`, "must be bool")
	wantError(t, `
event E;
machine M {
  var x: int;
  state S { entry { while x + 1 { skip; } } }
}
main M();
`, "must be bool")
}

func TestOperatorTyping(t *testing.T) {
	wantError(t, `
event E;
machine M {
  var b: bool;
  var x: int;
  state S { entry { x = b + 1; } }
}
main M();
`, "must be int")
	wantError(t, `
event E;
machine M {
  var b: bool;
  var m: id;
  state S { entry { b = m == 3; } }
}
main M();
`, "cannot compare")
}

func TestAssignTypeMismatch(t *testing.T) {
	wantError(t, `
event E;
machine M {
  var x: int;
  state S { entry { x = true; } }
}
main M();
`, "cannot assign bool")
}

func TestUndeclaredNames(t *testing.T) {
	wantError(t, `
event E;
machine M {
  state S { entry { x = 1; } }
}
main M();
`, "undeclared variable x")
	wantError(t, `
event E;
machine M {
  state S {
    entry { skip; }
    on Nope goto S;
  }
}
main M();
`, "undeclared event Nope")
	wantError(t, `
event E;
machine M {
  state S {
    entry { skip; }
    on E goto Nowhere;
  }
}
main M();
`, "not a state")
}

// ------------------------------------------------------ exit restrictions

func TestExitRestrictions(t *testing.T) {
	for _, bad := range []string{"raise E;", "return;", "leave;", "call S;"} {
		src := `
event E;
machine M {
  state S {
    entry { skip; }
    exit { ` + bad + ` }
    on E goto S;
  }
}
main M();
`
		diags := checkSrc(t, src)
		if !diags.HasErrors() {
			t.Errorf("exit with %q accepted", bad)
		}
	}
}

// ------------------------------------------------------ foreign functions

func TestForeignArity(t *testing.T) {
	wantError(t, `
event E;
machine M {
  foreign f(int): void;
  state S { entry { f(1, 2); } }
}
main M();
`, "expects 1 arguments")
}

func TestForeignModelErasable(t *testing.T) {
	wantError(t, `
event E;
machine M {
  var x: int;
  foreign f(): void { x = 1; }
  state S { entry { skip; } }
}
main M();
`, "may not assign real variable")
	wantClean(t, `
event E;
machine M {
  ghost var gx: int;
  foreign f(): void { gx = gx + 1; if * { gx = 0; } }
  state S { entry { skip; } }
}
main M();
`)
	wantError(t, `
event E;
machine M {
  ghost var g: id;
  foreign f(): void { send g, E; }
  state S { entry { skip; } }
}
main M();
`, "send is not allowed in a foreign model")
}

// ------------------------------------------------------------- main checks

func TestMainMustBeConstInit(t *testing.T) {
	wantError(t, `
event E;
machine M {
  var x: int;
  state S { entry { skip; } }
}
main M(x = 1 + 2);
`, "must be a constant")
	wantClean(t, `
event E;
machine M {
  var x: int;
  var b: bool;
  var e: event;
  state S { entry { skip; } }
}
main M(x = -3, b = false, e = E);
`)
}

func TestMainUnknownMachine(t *testing.T) {
	wantError(t, `
event E;
machine M { state S { entry { skip; } } }
main Z();
`, "not declared")
}

func TestMainUnknownVar(t *testing.T) {
	wantError(t, `
event E;
machine M { state S { entry { skip; } } }
main M(zz = 1);
`, "no variable zz")
}

// --------------------------------------------------------------- warnings

func TestDeferPlusTransitionWarns(t *testing.T) {
	diags := checkSrc(t, `
event E;
machine M {
  state S {
    defer E;
    entry { skip; }
    on E goto S;
  }
}
main M();
`)
	if diags.HasErrors() {
		t.Fatalf("should be a warning, not an error:\n%s", diags.String())
	}
	if !strings.Contains(diags.String(), "the transition wins") {
		t.Fatalf("expected defer-overridden warning:\n%s", diags.String())
	}
}

func TestMachineWithoutStates(t *testing.T) {
	wantError(t, `
event E;
machine M { }
main M();
`, "has no states")
}

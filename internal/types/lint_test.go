package types_test

import (
	"strings"
	"testing"

	"pgo/internal/parser"
	"pgo/internal/psamples"
	"pgo/internal/source"
	"pgo/internal/types"
)

func lintSrc(t *testing.T, src string) *source.DiagList {
	t.Helper()
	var diags source.DiagList
	prog := parser.Parse(src, &diags)
	chk := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("frontend failed:\n%s", diags.String())
	}
	types.Lint(chk, &diags)
	return &diags
}

func wantLint(t *testing.T, src, substr string) {
	t.Helper()
	diags := lintSrc(t, src)
	if !strings.Contains(diags.String(), substr) {
		t.Fatalf("lint output missing %q:\n%s", substr, diags.String())
	}
}

func wantNoLint(t *testing.T, src string) {
	t.Helper()
	diags := lintSrc(t, src)
	if diags.Len() != 0 {
		t.Fatalf("unexpected lint findings:\n%s", diags.String())
	}
}

func TestLintUnreachableState(t *testing.T) {
	wantLint(t, `
event E;
machine M {
  state A {
    entry { raise E; }
    on E goto B;
  }
  state B { entry { skip; } on E goto B; }
  state Orphan { entry { skip; } on E goto A; }
}
main M();
`, "state Orphan is unreachable")
}

func TestLintReachableViaCallStmt(t *testing.T) {
	wantNoLint(t, `
event E;
machine M {
  state A {
    entry { call Sub; raise E; }
    on E goto A;
  }
  state Sub { entry { return; } }
}
main M();
`)
}

func TestLintReachableViaActionCall(t *testing.T) {
	wantNoLint(t, `
event E;
machine M {
  action Go { call Sub; }
  state A {
    entry { raise E; }
    on E do Go;
  }
  state Sub { entry { return; } }
}
main M();
`)
}

func TestLintUnsentEvent(t *testing.T) {
	wantLint(t, `
event Used; event Ghostly;
machine M {
  state A {
    entry { raise Used; }
    on Used goto A;
    on Ghostly goto A;
  }
}
main M();
`, "event Ghostly is never sent")
}

func TestLintUnhandledEvent(t *testing.T) {
	wantLint(t, `
event Fired;
machine M {
  var m: id;
  state A {
    entry { m = new M(); send m, Fired; }
  }
}
main M();
`, "event Fired is never handled")
}

func TestLintWriteOnlyVariable(t *testing.T) {
	wantLint(t, `
event E;
machine M {
  var scratch: int;
  state A { entry { scratch = 1; raise E; } on E goto A; }
}
main M();
`, "variable scratch of machine M is never read")
}

// Holding a machine reference from new without reading it is idiomatic and
// not reported.
func TestLintHeldReferenceNotReported(t *testing.T) {
	wantNoLint(t, `
event E;
machine Sub {
  state S { entry { raise E; } on E goto S; }
}
machine M {
  var child: id;
  state A { entry { child = new Sub(); raise E; } on E goto A; }
}
main M();
`)
}

func TestLintUnboundAction(t *testing.T) {
	wantLint(t, `
event E;
machine M {
  action Dead { skip; }
  state A { entry { raise E; } on E goto A; }
}
main M();
`, "action Dead of machine M is never bound")
}

func TestLintUninstantiatedMachine(t *testing.T) {
	wantLint(t, `
event E;
machine Never {
  state S { entry { raise E; } on E goto S; }
}
machine M {
  state A { entry { raise E; } on E goto A; }
}
main M();
`, "machine Never is never instantiated")
}

// The embedded samples are lint-clean (checked here so regressions in
// samples or the linter itself surface in tests, not just in pc -check).
func TestLintSamplesClean(t *testing.T) {
	for _, name := range []string{"pingpong", "elevator", "switchled", "german", "ring", "boundedbuffer"} {
		name := name
		t.Run(name, func(t *testing.T) {
			src := sampleSource(t, name)
			diags := lintSrc(t, src)
			for _, d := range diags.All() {
				if d.Severity == source.Warning && !strings.Contains(d.Message, "the transition wins") {
					t.Errorf("lint finding: %s", d)
				}
			}
		})
	}
}

func sampleSource(t *testing.T, name string) string {
	t.Helper()
	s, ok := psamples.ByName(name)
	if !ok {
		t.Fatalf("no sample %s", name)
	}
	return s.Source
}

package types

import (
	"pgo/internal/ast"
	"pgo/internal/source"
)

// Check runs semantic analysis over prog. Diagnostics go to diags; the
// returned tables are usable for lowering only if diags has no errors.
func Check(prog *ast.Program, diags *source.DiagList) *Checked {
	c := &checker{out: newChecked(prog), diags: diags}
	c.collect(prog)
	c.checkBodies(prog)
	c.checkMain(prog)
	return c.out
}

type checker struct {
	out   *Checked
	diags *source.DiagList

	// Per-machine context while checking bodies.
	mach *MachineSym
	// ghostCtx is true when checking code whose effects are erased:
	// ghost-machine bodies and foreign model bodies. Nondeterministic `*`
	// is only legal there.
	ghostCtx bool
	// modelCtx is true inside foreign model bodies, which must be erasable.
	modelCtx bool
	// exitCtx is true inside exit blocks, which may not transfer control.
	exitCtx bool
}

// ------------------------------------------------------------- declarations

func (c *checker) collect(prog *ast.Program) {
	for _, ed := range prog.Events {
		if prev, ok := c.out.EventByName[ed.Name.Name]; ok {
			c.diags.Errorf(ed.Name.Sp, "event %s redeclared (previous declaration at %s)", ed.Name.Name, prev.Decl.Name.Sp)
			continue
		}
		payload := Void
		if ed.Payload != nil {
			payload = fromAST(ed.Payload)
			if payload == Void {
				c.diags.Errorf(ed.Payload.Sp, "event payload type cannot be void; omit the payload instead")
			}
		}
		sym := &EventSym{Name: ed.Name.Name, ID: len(c.out.Events), Payload: payload, Decl: ed}
		c.out.Events = append(c.out.Events, sym)
		c.out.EventByName[sym.Name] = sym
	}

	for _, md := range prog.Machines {
		if prev, ok := c.out.MachineByName[md.Name.Name]; ok {
			c.diags.Errorf(md.Name.Sp, "machine %s redeclared (previous declaration at %s)", md.Name.Name, prev.Decl.Name.Sp)
			continue
		}
		m := &MachineSym{
			Name: md.Name.Name, ID: len(c.out.Machines), Ghost: md.Ghost, Decl: md,
			VarByName:     map[string]*VarSym{},
			ActionByName:  map[string]*ActionSym{},
			StateByName:   map[string]*StateSym{},
			ForeignByName: map[string]*ForeignSym{},
		}
		c.out.Machines = append(c.out.Machines, m)
		c.out.MachineByName[m.Name] = m
		c.collectMachine(m)
	}
}

func (c *checker) collectMachine(m *MachineSym) {
	md := m.Decl
	for _, vd := range md.Vars {
		if prev, ok := m.VarByName[vd.Name.Name]; ok {
			c.diags.Errorf(vd.Name.Sp, "variable %s redeclared in machine %s (previous at %s)", vd.Name.Name, m.Name, prev.Decl.Name.Sp)
			continue
		}
		t := fromAST(vd.Type)
		if t == Void {
			c.diags.Errorf(vd.Type.Sp, "variable %s cannot have type void", vd.Name.Name)
		}
		// Inside a ghost machine every variable is ghost.
		ghost := vd.Ghost || m.Ghost
		sym := &VarSym{Name: vd.Name.Name, ID: len(m.Vars), Type: t, Ghost: ghost, Decl: vd}
		m.Vars = append(m.Vars, sym)
		m.VarByName[sym.Name] = sym
	}
	for _, a := range md.Actions {
		if prev, ok := m.ActionByName[a.Name.Name]; ok {
			c.diags.Errorf(a.Name.Sp, "action %s redeclared in machine %s (previous at %s)", a.Name.Name, m.Name, prev.Decl.Name.Sp)
			continue
		}
		sym := &ActionSym{Name: a.Name.Name, ID: len(m.Actions), Decl: a}
		m.Actions = append(m.Actions, sym)
		m.ActionByName[sym.Name] = sym
	}
	for _, s := range md.States {
		if prev, ok := m.StateByName[s.Name.Name]; ok {
			c.diags.Errorf(s.Name.Sp, "state %s redeclared in machine %s (previous at %s)", s.Name.Name, m.Name, prev.Decl.Name.Sp)
			continue
		}
		sym := &StateSym{Name: s.Name.Name, ID: len(m.States), Decl: s}
		m.States = append(m.States, sym)
		m.StateByName[sym.Name] = sym
	}
	for _, f := range md.Foreign {
		if prev, ok := m.ForeignByName[f.Name.Name]; ok {
			c.diags.Errorf(f.Name.Sp, "foreign function %s redeclared in machine %s (previous at %s)", f.Name.Name, m.Name, prev.Decl.Name.Sp)
			continue
		}
		sym := &ForeignSym{Name: f.Name.Name, ID: len(m.Foreigns), Result: Void, Decl: f}
		for _, pt := range f.Params {
			sym.Params = append(sym.Params, fromAST(pt))
		}
		if f.Result != nil {
			sym.Result = fromAST(f.Result)
		}
		if m.Ghost && f.Model == nil {
			c.diags.Codef(source.Warning, CodeForeignNoModel, f.Sp, "foreign function %s in ghost machine %s has no model body; calls evaluate to null during verification", f.Name.Name, m.Name)
		}
		m.Foreigns = append(m.Foreigns, sym)
		m.ForeignByName[sym.Name] = sym
	}
	if len(m.States) == 0 {
		c.diags.Errorf(md.Name.Sp, "machine %s has no states", m.Name)
	}
}

// ------------------------------------------------------------------- bodies

func (c *checker) checkBodies(prog *ast.Program) {
	for _, m := range c.out.Machines {
		c.mach = m
		c.ghostCtx = m.Ghost
		for _, s := range m.States {
			c.checkState(m, s)
		}
		for _, a := range m.Actions {
			c.checkBlock(a.Decl.Body)
		}
		for _, f := range m.Foreigns {
			if f.Decl.Model != nil {
				savedGhost, savedModel := c.ghostCtx, c.modelCtx
				c.ghostCtx, c.modelCtx = true, !m.Ghost
				c.checkBlock(f.Decl.Model)
				c.ghostCtx, c.modelCtx = savedGhost, savedModel
			}
		}
	}
	c.mach = nil
	c.ghostCtx = false
}

func (c *checker) lookupEvent(id *ast.Ident) *EventSym {
	if e, ok := c.out.EventByName[id.Name]; ok {
		return e
	}
	c.diags.Errorf(id.Sp, "undeclared event %s", id.Name)
	return nil
}

func (c *checker) checkState(m *MachineSym, s *StateSym) {
	sd := s.Decl
	// Deferred and postponed sets must name declared events, without
	// duplicates.
	seenDefer := map[string]bool{}
	for _, id := range sd.Deferred {
		if c.lookupEvent(id) == nil {
			continue
		}
		if seenDefer[id.Name] {
			c.diags.Codef(source.Warning, CodeDuplicateDefer, id.Sp, "event %s deferred twice in state %s", id.Name, s.Name)
		}
		seenDefer[id.Name] = true
	}
	seenPostpone := map[string]bool{}
	for _, id := range sd.Postponed {
		if c.lookupEvent(id) == nil {
			continue
		}
		if seenPostpone[id.Name] {
			c.diags.Codef(source.Warning, CodeDuplicateDefer, id.Sp, "event %s postponed twice in state %s", id.Name, s.Name)
		}
		seenPostpone[id.Name] = true
	}

	// Determinism (§3.3 check 2): at most one transition and at most one
	// action binding per event in a state. A transition overrides a deferral
	// (DEQUEUE rule) and takes priority over an action binding (ACTION rule).
	transSeen := map[string]source.Span{}
	actionSeen := map[string]source.Span{}
	for _, tr := range sd.Trans {
		ev := c.lookupEvent(tr.Event)
		if ev == nil {
			continue
		}
		switch tr.Kind {
		case ast.TransStep, ast.TransCall:
			if prev, ok := transSeen[ev.Name]; ok {
				c.diags.Errorf(tr.Sp, "state %s already has a transition on event %s (previous at %s)", s.Name, ev.Name, prev.Start)
			}
			transSeen[ev.Name] = tr.Sp
			if tr.Target != nil {
				if _, ok := m.StateByName[tr.Target.Name]; !ok {
					c.diags.Errorf(tr.Target.Sp, "transition target %s is not a state of machine %s", tr.Target.Name, m.Name)
				}
			}
			if seenDefer[ev.Name] {
				c.diags.Codef(source.Warning, CodeDeferOverridden, tr.Sp, "event %s is both deferred and handled by a transition in state %s; the transition wins", ev.Name, s.Name)
			}
		case ast.TransAction:
			if prev, ok := actionSeen[ev.Name]; ok {
				c.diags.Errorf(tr.Sp, "state %s already binds an action to event %s (previous at %s)", s.Name, ev.Name, prev.Start)
			}
			actionSeen[ev.Name] = tr.Sp
			if tr.Target != nil {
				if _, ok := m.ActionByName[tr.Target.Name]; !ok {
					c.diags.Errorf(tr.Target.Sp, "action %s is not declared in machine %s", tr.Target.Name, m.Name)
				}
			}
		case ast.TransIgnore:
			if prev, ok := actionSeen[ev.Name]; ok {
				c.diags.Errorf(tr.Sp, "state %s already binds an action to event %s (previous at %s)", s.Name, ev.Name, prev.Start)
			}
			actionSeen[ev.Name] = tr.Sp
		}
	}

	if sd.Entry != nil {
		c.checkBlock(sd.Entry)
	}
	if sd.Exit != nil {
		saved := c.exitCtx
		c.exitCtx = true
		c.checkBlock(sd.Exit)
		c.exitCtx = saved
	}
}

// --------------------------------------------------------------- statements

func (c *checker) checkBlock(b *ast.Block) {
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.checkBlock(s)
	case *ast.SkipStmt:
		// nothing
	case *ast.AssignStmt:
		c.checkAssign(s)
	case *ast.NewStmt:
		c.checkNew(s)
	case *ast.DeleteStmt:
		if c.modelCtx {
			c.diags.Errorf(s.Sp, "delete is not allowed in a foreign model body")
		}
	case *ast.SendStmt:
		c.checkSend(s)
	case *ast.RaiseStmt:
		c.checkRaise(s)
	case *ast.LeaveStmt:
		if c.exitCtx {
			c.diags.Errorf(s.Sp, "leave is not allowed in an exit block")
		}
		if c.modelCtx {
			c.diags.Errorf(s.Sp, "leave is not allowed in a foreign model body")
		}
	case *ast.ReturnStmt:
		if c.exitCtx {
			c.diags.Errorf(s.Sp, "return is not allowed in an exit block")
		}
		if c.modelCtx {
			c.diags.Errorf(s.Sp, "return is not allowed in a foreign model body")
		}
	case *ast.AssertStmt:
		t := c.checkExpr(s.Expr)
		if !assignable(Bool, t) {
			c.diags.Errorf(s.Expr.Span(), "assert condition must be bool, found %s", t)
		}
		// Assertions may freely mention ghost state (§3.3): they are kept
		// for verification and erased with their ghost operands.
	case *ast.IfStmt:
		c.checkCond(s.Cond, "if")
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		c.checkCond(s.Cond, "while")
		c.checkBlock(s.Body)
	case *ast.CallStmt:
		if c.exitCtx {
			c.diags.Errorf(s.Sp, "call is not allowed in an exit block")
		}
		if c.modelCtx {
			c.diags.Errorf(s.Sp, "call is not allowed in a foreign model body")
		}
		if c.mach != nil {
			if _, ok := c.mach.StateByName[s.State.Name]; !ok {
				c.diags.Errorf(s.State.Sp, "call target %s is not a state of machine %s", s.State.Name, c.mach.Name)
			}
		}
	case *ast.ExprStmt:
		c.checkExpr(s.Call)
	default:
		c.diags.Errorf(s.Span(), "internal: unknown statement node %T", s)
	}
}

func (c *checker) checkCond(e ast.Expr, what string) {
	t := c.checkExpr(e)
	if !assignable(Bool, t) {
		c.diags.Errorf(e.Span(), "%s condition must be bool, found %s", what, t)
	}
	// In a real machine, erasing ghosts must not change control flow, so
	// conditions must not be ghost-tainted.
	if !c.mach.Ghost && !c.modelCtx && c.exprGhost(e) {
		c.diags.Errorf(e.Span(), "%s condition in real machine %s depends on ghost state; erasure would change control flow", what, c.mach.Name)
	}
}

func (c *checker) checkAssign(s *ast.AssignStmt) {
	v := c.lookupVar(s.Name)
	t := c.checkExpr(s.Expr)
	if v == nil {
		return
	}
	if !assignable(v.Type, t) {
		c.diags.Errorf(s.Sp, "cannot assign %s to variable %s of type %s", t, v.Name, v.Type)
	}
	c.checkGhostFlow(v, s.Expr, s.Sp)
}

// checkGhostFlow enforces the erasure rules for an assignment to v.
func (c *checker) checkGhostFlow(v *VarSym, rhs ast.Expr, sp source.Span) {
	if c.mach.Ghost {
		return // everything in a ghost machine is erased together
	}
	if c.modelCtx {
		// Foreign model bodies are erasable: they may only write ghost state.
		if !v.Ghost {
			c.diags.Errorf(sp, "foreign model body may not assign real variable %s", v.Name)
		}
		return
	}
	if !v.Ghost && c.exprGhost(rhs) {
		c.diags.Errorf(sp, "cannot assign ghost expression to real variable %s; erasure would change machine state", v.Name)
	}
}

func (c *checker) checkNew(s *ast.NewStmt) {
	if c.modelCtx {
		c.diags.Errorf(s.Sp, "new is not allowed in a foreign model body (models must be local ghost-state updates)")
	}
	v := c.lookupVar(s.Name)
	target, ok := c.out.MachineByName[s.Machine.Name]
	if !ok {
		c.diags.Errorf(s.Machine.Sp, "undeclared machine %s", s.Machine.Name)
		return
	}
	if v != nil {
		if !assignable(v.Type, ID) {
			c.diags.Errorf(s.Sp, "cannot assign machine identifier to variable %s of type %s", v.Name, v.Type)
		}
		if !c.mach.Ghost {
			if c.modelCtx && !v.Ghost {
				c.diags.Errorf(s.Sp, "foreign model body may not assign real variable %s", v.Name)
			}
			// §3.3: complete separation for machine identifiers so that
			// sends to ghost machines are statically identifiable.
			if target.Ghost && !v.Ghost {
				c.diags.Errorf(s.Sp, "identifier of ghost machine %s must be stored in a ghost variable", target.Name)
			}
			if !target.Ghost && v.Ghost {
				c.diags.Errorf(s.Sp, "identifier of real machine %s must not be stored in ghost variable %s", target.Name, v.Name)
			}
		}
	}
	c.checkInits(target, s.Inits, false)
}

// checkInits checks "x = e" initializer lists against the target machine's
// variables. fromMain marks the program's main declaration, whose
// initializers must be constant expressions.
func (c *checker) checkInits(target *MachineSym, inits []*ast.Init, fromMain bool) {
	seen := map[string]bool{}
	for _, init := range inits {
		v, ok := target.VarByName[init.Name.Name]
		if !ok {
			c.diags.Errorf(init.Name.Sp, "machine %s has no variable %s", target.Name, init.Name.Name)
			c.checkExpr(init.Expr)
			continue
		}
		if seen[v.Name] {
			c.diags.Errorf(init.Name.Sp, "duplicate initializer for variable %s", v.Name)
		}
		seen[v.Name] = true
		var t Type
		if fromMain {
			t = c.checkConstExpr(init.Expr)
		} else {
			t = c.checkExpr(init.Expr)
		}
		if !assignable(v.Type, t) {
			c.diags.Errorf(init.Expr.Span(), "cannot initialize variable %s of type %s with %s", v.Name, v.Type, t)
		}
		if !fromMain && c.mach != nil && !c.mach.Ghost && !c.modelCtx {
			// Initializing a real target machine's real variable with a
			// ghost expression would leak ghost state into execution.
			if !target.Ghost && !v.Ghost && c.exprGhost(init.Expr) {
				c.diags.Errorf(init.Expr.Span(), "cannot initialize real variable %s of machine %s with a ghost expression", v.Name, target.Name)
			}
		}
	}
}

func (c *checker) checkSend(s *ast.SendStmt) {
	tt := c.checkExpr(s.Target)
	if !assignable(ID, tt) {
		c.diags.Errorf(s.Target.Span(), "send target must have type id, found %s", tt)
	}
	ev := c.lookupEvent(s.Event)
	var pt Type = Void
	if s.Payload != nil {
		pt = c.checkExpr(s.Payload)
	}
	if ev != nil {
		if ev.Payload == Void && s.Payload != nil {
			if _, isNull := nullLit(s.Payload); !isNull {
				c.diags.Errorf(s.Payload.Span(), "event %s carries no payload", ev.Name)
			}
		}
		if ev.Payload != Void && s.Payload != nil && !assignable(ev.Payload, pt) {
			c.diags.Errorf(s.Payload.Span(), "payload of event %s must be %s, found %s", ev.Name, ev.Payload, pt)
		}
	}
	if c.mach != nil && !c.mach.Ghost && !c.modelCtx {
		// In a real machine, a send whose target is ghost is itself ghost
		// and will be erased; its payload may mention ghost state. A send
		// to a real machine must be entirely real.
		if !c.exprGhost(s.Target) {
			if s.Payload != nil && c.exprGhost(s.Payload) {
				c.diags.Errorf(s.Payload.Span(), "payload of a send to a real machine may not depend on ghost state")
			}
		}
	}
	if c.modelCtx {
		c.diags.Errorf(s.Sp, "send is not allowed in a foreign model body (models must be local ghost-state updates)")
	}
}

func (c *checker) checkRaise(s *ast.RaiseStmt) {
	if c.exitCtx {
		c.diags.Errorf(s.Sp, "raise is not allowed in an exit block")
	}
	if c.modelCtx {
		c.diags.Errorf(s.Sp, "raise is not allowed in a foreign model body")
	}
	ev := c.lookupEvent(s.Event)
	var pt Type = Void
	if s.Payload != nil {
		pt = c.checkExpr(s.Payload)
	}
	if ev != nil {
		if ev.Payload == Void && s.Payload != nil {
			if _, isNull := nullLit(s.Payload); !isNull {
				c.diags.Errorf(s.Payload.Span(), "event %s carries no payload", ev.Name)
			}
		}
		if ev.Payload != Void && s.Payload != nil && !assignable(ev.Payload, pt) {
			c.diags.Errorf(s.Payload.Span(), "payload of event %s must be %s, found %s", ev.Name, ev.Payload, pt)
		}
	}
	if c.mach != nil && !c.mach.Ghost && s.Payload != nil && c.exprGhost(s.Payload) {
		c.diags.Errorf(s.Payload.Span(), "raise payload in real machine may not depend on ghost state")
	}
}

func nullLit(e ast.Expr) (*ast.Lit, bool) {
	l, ok := e.(*ast.Lit)
	if ok && l.Kind == ast.LitNull {
		return l, true
	}
	return nil, false
}

// --------------------------------------------------------------- expressions

func (c *checker) lookupVar(id *ast.Ident) *VarSym {
	if c.mach == nil {
		return nil
	}
	if v, ok := c.mach.VarByName[id.Name]; ok {
		return v
	}
	c.diags.Errorf(id.Sp, "undeclared variable %s in machine %s", id.Name, c.mach.Name)
	return nil
}

func (c *checker) checkExpr(e ast.Expr) Type {
	t := c.exprType(e)
	c.out.ExprType[e] = t
	if c.mach != nil {
		c.out.ExprGhost[e] = c.exprGhost(e)
	}
	return t
}

func (c *checker) exprType(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.Lit:
		switch e.Kind {
		case ast.LitInt:
			return Int
		case ast.LitTrue, ast.LitFalse:
			return Bool
		case ast.LitNull:
			return Any
		case ast.LitThis:
			return ID
		case ast.LitMsg:
			return Event
		case ast.LitArg:
			return Any
		case ast.LitChoose:
			if !c.ghostCtx {
				c.diags.Errorf(e.Sp, "nondeterministic choice '*' is only allowed in ghost machines and foreign model bodies (real machines must be deterministic)")
			}
			return Bool
		}
		return Invalid
	case *ast.NameExpr:
		// A name is a variable if declared in the machine, else an event
		// constant.
		if c.mach != nil {
			if v, ok := c.mach.VarByName[e.Name.Name]; ok {
				c.out.VarUse[e] = v
				return v.Type
			}
		}
		if ev, ok := c.out.EventByName[e.Name.Name]; ok {
			c.out.EventUse[e] = ev
			return Event
		}
		c.diags.Errorf(e.Sp, "undeclared name %s", e.Name.Name)
		return Invalid
	case *ast.UnaryExpr:
		t := c.checkExpr(e.X)
		switch e.Op {
		case ast.OpNot:
			if !assignable(Bool, t) {
				c.diags.Errorf(e.Sp, "operand of ! must be bool, found %s", t)
			}
			return Bool
		case ast.OpNeg:
			if !assignable(Int, t) {
				c.diags.Errorf(e.Sp, "operand of unary - must be int, found %s", t)
			}
			return Int
		}
		return Invalid
	case *ast.BinaryExpr:
		tx := c.checkExpr(e.X)
		ty := c.checkExpr(e.Y)
		switch e.Op {
		case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod:
			if !assignable(Int, tx) || !assignable(Int, ty) {
				c.diags.Errorf(e.Sp, "operands of %s must be int, found %s and %s", e.Op, tx, ty)
			}
			return Int
		case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			if !assignable(Int, tx) || !assignable(Int, ty) {
				c.diags.Errorf(e.Sp, "operands of %s must be int, found %s and %s", e.Op, tx, ty)
			}
			return Bool
		case ast.OpAnd, ast.OpOr:
			if !assignable(Bool, tx) || !assignable(Bool, ty) {
				c.diags.Errorf(e.Sp, "operands of %s must be bool, found %s and %s", e.Op, tx, ty)
			}
			return Bool
		case ast.OpEq, ast.OpNeq:
			if !assignable(tx, ty) {
				c.diags.Errorf(e.Sp, "cannot compare %s with %s", tx, ty)
			}
			return Bool
		}
		return Invalid
	case *ast.CallExpr:
		if c.mach == nil {
			c.diags.Errorf(e.Sp, "foreign call outside machine scope")
			return Invalid
		}
		f, ok := c.mach.ForeignByName[e.Name.Name]
		if !ok {
			c.diags.Errorf(e.Name.Sp, "undeclared foreign function %s in machine %s", e.Name.Name, c.mach.Name)
			for _, a := range e.Args {
				c.checkExpr(a)
			}
			return Invalid
		}
		c.out.ForeignUse[e] = f
		if len(e.Args) != len(f.Params) {
			c.diags.Errorf(e.Sp, "foreign function %s expects %d arguments, got %d", f.Name, len(f.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at := c.checkExpr(a)
			if i < len(f.Params) && !assignable(f.Params[i], at) {
				c.diags.Errorf(a.Span(), "argument %d of %s must be %s, found %s", i+1, f.Name, f.Params[i], at)
			}
			if !c.mach.Ghost && !c.modelCtx && c.exprGhost(a) {
				c.diags.Errorf(a.Span(), "argument of foreign call %s in real machine may not depend on ghost state", f.Name)
			}
		}
		return f.Result
	default:
		c.diags.Errorf(e.Span(), "internal: unknown expression node %T", e)
		return Invalid
	}
}

// exprGhost computes the ghost taint of an expression inside the current
// machine: true if erasing ghost state could change its value.
func (c *checker) exprGhost(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Lit:
		return e.Kind == ast.LitChoose
	case *ast.NameExpr:
		if v, ok := c.out.VarUse[e]; ok {
			return v.Ghost
		}
		if c.mach != nil {
			if v, ok := c.mach.VarByName[e.Name.Name]; ok {
				return v.Ghost
			}
		}
		return false
	case *ast.UnaryExpr:
		return c.exprGhost(e.X)
	case *ast.BinaryExpr:
		return c.exprGhost(e.X) || c.exprGhost(e.Y)
	case *ast.CallExpr:
		for _, a := range e.Args {
			if c.exprGhost(a) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// checkConstExpr types an expression required to be a compile-time constant
// (main-declaration initializers, which run before any machine exists).
func (c *checker) checkConstExpr(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.Lit:
		switch e.Kind {
		case ast.LitInt:
			c.out.ExprType[e] = Int
			return Int
		case ast.LitTrue, ast.LitFalse:
			c.out.ExprType[e] = Bool
			return Bool
		case ast.LitNull:
			c.out.ExprType[e] = Any
			return Any
		}
		c.diags.Errorf(e.Sp, "main initializer must be a constant (int, bool, null, or event name)")
		return Invalid
	case *ast.NameExpr:
		if ev, ok := c.out.EventByName[e.Name.Name]; ok {
			c.out.EventUse[e] = ev
			c.out.ExprType[e] = Event
			return Event
		}
		c.diags.Errorf(e.Sp, "main initializer must be a constant; %s is not an event", e.Name.Name)
		return Invalid
	case *ast.UnaryExpr:
		if e.Op == ast.OpNeg {
			t := c.checkConstExpr(e.X)
			if !assignable(Int, t) {
				c.diags.Errorf(e.Sp, "operand of unary - must be int")
			}
			c.out.ExprType[e] = Int
			return Int
		}
	}
	c.diags.Errorf(e.Span(), "main initializer must be a constant (int, bool, null, or event name)")
	return Invalid
}

// --------------------------------------------------------------------- main

func (c *checker) checkMain(prog *ast.Program) {
	if prog.Main == nil {
		return
	}
	m, ok := c.out.MachineByName[prog.Main.Machine.Name]
	if !ok {
		c.diags.Errorf(prog.Main.Machine.Sp, "main machine %s is not declared", prog.Main.Machine.Name)
		return
	}
	c.out.MainMachine = m
	c.mach = nil
	c.checkInits(m, prog.Main.Inits, true)
}

package types

// Stable diagnostic codes for the frontend's hygiene warnings. Codes are
// part of the tool interface (plint -json, build-system suppressions) and
// must never be renumbered; retire a code rather than reuse it. The P0xx
// block belongs to the frontend (check + lint); the P1xx–P3xx blocks belong
// to internal/analysis.
const (
	// CodeEventNeverSent: an event is declared but no machine sends or
	// raises it, so every handler for it is dead.
	CodeEventNeverSent = "P001"
	// CodeEventNeverHandled: no state handles or defers the event; every
	// delivery would be an unhandled-event error.
	CodeEventNeverHandled = "P002"
	// CodeMachineNeverNew: a machine type is never instantiated.
	CodeMachineNeverNew = "P003"
	// CodeStateUnreachable: a state is unreachable from the machine's
	// initial state through its transitions and call statements.
	CodeStateUnreachable = "P004"
	// CodeVarNeverRead: a variable is written but never read.
	CodeVarNeverRead = "P005"
	// CodeActionNeverBound: an action is never bound by any state.
	CodeActionNeverBound = "P006"
	// CodeForeignNoModel: a ghost machine's foreign function has no model
	// body, so calls evaluate to null during verification.
	CodeForeignNoModel = "P007"
	// CodeDuplicateDefer: an event appears twice in a defer/postpone set.
	CodeDuplicateDefer = "P008"
	// CodeDeferOverridden: an event is both deferred and handled by a
	// transition in the same state; the transition wins.
	CodeDeferOverridden = "P009"
)

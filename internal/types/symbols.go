// Package types implements P's semantic analysis (§3.3 of the paper):
// name resolution, uniqueness of identifiers, determinism of transitions,
// expression/statement typing, and the ghost-erasure rules that guarantee
// ghost machines and variables can be removed without changing the behaviour
// of real machines.
package types

import (
	"pgo/internal/ast"
)

// Type is a semantic type. Any is the dynamic type of the special ⊥ constant
// and of the `arg` payload variable; it is compatible with every type and is
// checked at run time, matching the paper's permissive treatment of payloads.
type Type int

const (
	Invalid Type = iota
	Void
	Bool
	Int
	Event
	ID
	Any
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Event:
		return "event"
	case ID:
		return "id"
	case Any:
		return "any"
	default:
		return "invalid"
	}
}

// fromAST converts a syntactic type to a semantic one.
func fromAST(t *ast.TypeExpr) Type {
	if t == nil {
		return Void
	}
	switch t.Kind {
	case ast.TypeVoid:
		return Void
	case ast.TypeBool:
		return Bool
	case ast.TypeInt:
		return Int
	case ast.TypeEvent:
		return Event
	case ast.TypeID:
		return ID
	default:
		return Invalid
	}
}

// assignable reports whether a value of type src may flow into a slot of
// type dst. Any is bidirectionally compatible (dynamically checked).
func assignable(dst, src Type) bool {
	if dst == Invalid || src == Invalid {
		return true // avoid cascading errors
	}
	if dst == Any || src == Any {
		return true
	}
	return dst == src
}

// EventSym is a declared event.
type EventSym struct {
	Name    string
	ID      int
	Payload Type // Void when the event carries no payload
	Decl    *ast.EventDecl
}

// VarSym is a machine-local variable.
type VarSym struct {
	Name  string
	ID    int // index within the machine's variable list
	Type  Type
	Ghost bool
	Decl  *ast.VarDecl
}

// ActionSym is a named action.
type ActionSym struct {
	Name string
	ID   int
	Decl *ast.ActionDecl
}

// StateSym is a control state.
type StateSym struct {
	Name string
	ID   int
	Decl *ast.StateDecl
}

// ForeignSym is a foreign function visible in a machine.
type ForeignSym struct {
	Name   string
	ID     int
	Params []Type
	Result Type
	Decl   *ast.ForeignDecl
}

// MachineSym is a declared machine with its member symbol tables.
type MachineSym struct {
	Name  string
	ID    int
	Ghost bool
	Decl  *ast.MachineDecl

	Vars     []*VarSym
	Actions  []*ActionSym
	States   []*StateSym
	Foreigns []*ForeignSym

	VarByName     map[string]*VarSym
	ActionByName  map[string]*ActionSym
	StateByName   map[string]*StateSym
	ForeignByName map[string]*ForeignSym
}

// Checked is the result of semantic analysis: symbol tables plus resolution
// maps consumed by the lowering pass.
type Checked struct {
	AST      *ast.Program
	Events   []*EventSym
	Machines []*MachineSym

	EventByName   map[string]*EventSym
	MachineByName map[string]*MachineSym

	// VarUse resolves a NameExpr that denotes a variable.
	VarUse map[*ast.NameExpr]*VarSym
	// EventUse resolves a NameExpr that denotes an event constant.
	EventUse map[*ast.NameExpr]*EventSym
	// ForeignUse resolves a CallExpr to the foreign function it invokes.
	ForeignUse map[*ast.CallExpr]*ForeignSym
	// ExprType records the checked type of every expression.
	ExprType map[ast.Expr]Type
	// ExprGhost records ghost taint of expressions inside real machines.
	ExprGhost map[ast.Expr]bool
	// MainMachine is the machine instantiated by the main declaration.
	MainMachine *MachineSym
}

func newChecked(prog *ast.Program) *Checked {
	return &Checked{
		AST:           prog,
		EventByName:   map[string]*EventSym{},
		MachineByName: map[string]*MachineSym{},
		VarUse:        map[*ast.NameExpr]*VarSym{},
		EventUse:      map[*ast.NameExpr]*EventSym{},
		ForeignUse:    map[*ast.CallExpr]*ForeignSym{},
		ExprType:      map[ast.Expr]Type{},
		ExprGhost:     map[ast.Expr]bool{},
	}
}

package types_test

import (
	"testing"

	"pgo/internal/parser"
	"pgo/internal/source"
	"pgo/internal/types"
)

func TestRaisePayloadTyping(t *testing.T) {
	wantError(t, `
event E(int);
machine M {
  state S { entry { raise E, true; } }
}
main M();
`, "must be int")
	wantError(t, `
event E;
machine M {
  state S { entry { raise E, 1; } }
}
main M();
`, "carries no payload")
	wantClean(t, `
event E(int);
machine M {
  state S { entry { raise E, 41 + 1; } }
}
main M();
`)
}

// arg has the dynamic type Any: it flows into any slot and back.
func TestArgIsDynamicallyTyped(t *testing.T) {
	wantClean(t, `
event E(int);
machine M {
  var x: int;
  var b: bool;
  var m: id;
  state S {
    entry {
      x = arg;
      b = arg;
      m = arg;
      send m, E, arg;
    }
    on E goto S;
  }
}
main M();
`)
}

// Events are first-class values of type event; msg has that type.
func TestEventValues(t *testing.T) {
	wantClean(t, `
event A; event B;
machine M {
  var e: event;
  var b: bool;
  state S {
    entry {
      e = A;
      b = e == B;
      b = msg == A;
    }
    on A goto S;
    on B goto S;
  }
}
main M();
`)
	wantError(t, `
event A;
machine M {
  var x: int;
  state S { entry { x = A; } }
}
main M();
`, "cannot assign event")
}

// Variables in a ghost machine are implicitly ghost: `*` may flow into them
// and they may hold ghost machine ids.
func TestGhostMachineVarsImplicitlyGhost(t *testing.T) {
	wantClean(t, `
event E;
ghost machine H { state S { entry { skip; } } }
ghost machine G {
  var other: id;
  var b: bool;
  state S {
    entry {
      b = *;
      other = new H();
    }
  }
}
main G();
`)
}

// Ghost machines may send to real machines — that is how the environment
// drives the system during verification.
func TestGhostSendsToReal(t *testing.T) {
	wantClean(t, `
event E(int);
machine R {
  state S {
    entry { skip; }
    on E goto S;
  }
}
ghost machine G {
  var r: id;
  state S {
    entry {
      r = new R();
      send r, E, 7;
    }
  }
}
main G();
`)
}

func TestForeignDuplicateAndUnknown(t *testing.T) {
	wantError(t, `
event E;
machine M {
  foreign f(): void;
  foreign f(int): int;
  state S { entry { skip; } }
}
main M();
`, "foreign function f redeclared")
	wantError(t, `
event E;
machine M {
  state S { entry { g(); } }
}
main M();
`, "undeclared foreign function g")
}

// Foreign model bodies may not create machines or transfer control.
func TestModelBodyRestrictions(t *testing.T) {
	for _, bad := range []struct{ stmt, diag string }{
		{"raise E;", "raise is not allowed"},
		{"return;", "return is not allowed"},
		{"leave;", "leave is not allowed"},
		{"delete;", "delete is not allowed"},
		{"call S;", "call is not allowed"},
		{"g = new G();", "new is not allowed"},
	} {
		src := `
event E;
ghost machine G { state T { entry { skip; } } }
machine M {
  ghost var g: id;
  foreign f(): void { ` + bad.stmt + ` }
  state S { entry { skip; } }
}
main M();
`
		wantError(t, src, bad.diag)
	}
}

// Payload type checking applies through Any: a null payload is accepted for
// typed events (dynamically checked).
func TestNullPayloadAccepted(t *testing.T) {
	wantClean(t, `
event E(int);
machine M {
  var m: id;
  state S {
    entry { m = new M(); send m, E, null; raise E, null; }
    on E goto S;
  }
}
main M();
`)
}

// The checker records expression types for every checked expression.
func TestExprTypesRecorded(t *testing.T) {
	var diags source.DiagList
	prog := parser.Parse(`
event E(int);
machine M {
  var x: int;
  state S { entry { x = 1 + 2; } }
}
main M();
`, &diags)
	chk := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %s", diags.String())
	}
	found := 0
	for _, typ := range chk.ExprType {
		if typ == types.Int {
			found++
		}
	}
	if found < 3 { // 1, 2, 1+2
		t.Fatalf("expected at least 3 int expressions recorded, got %d", found)
	}
	if chk.MainMachine == nil || chk.MainMachine.Name != "M" {
		t.Fatalf("main machine not resolved: %+v", chk.MainMachine)
	}
}

// Postpone sets must name declared events.
func TestPostponeUndeclared(t *testing.T) {
	wantError(t, `
event E;
machine M {
  state S {
    postpone Nope;
    entry { skip; }
  }
}
main M();
`, "undeclared event Nope")
}

// A state may both defer and postpone the same event (the common pattern).
func TestDeferAndPostponeTogether(t *testing.T) {
	wantClean(t, `
event E;
machine M {
  state S {
    defer E;
    postpone E;
    entry { skip; }
  }
}
main M();
`)
}

// Self-send through `this` is well-typed.
func TestSelfSend(t *testing.T) {
	wantClean(t, `
event E;
machine M {
  state S {
    entry { send this, E; }
    on E goto S;
  }
}
main M();
`)
}

// Comparisons between id values are allowed; ordering on ids is not.
func TestIDComparisons(t *testing.T) {
	wantClean(t, `
event E;
machine M {
  var a: id;
  var b: bool;
  state S { entry { b = a == this; b = a != this; } }
}
main M();
`)
	wantError(t, `
event E;
machine M {
  var a: id;
  var b: bool;
  state S { entry { b = a < this; } }
}
main M();
`, "must be int")
}

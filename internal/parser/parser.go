// Package parser implements a recursive-descent parser for the P surface
// language, producing ast trees and diagnostics.
package parser

import (
	"strconv"

	"pgo/internal/ast"
	"pgo/internal/lexer"
	"pgo/internal/source"
	"pgo/internal/token"
)

// Parse parses a complete P program. Diagnostics (including lexical ones)
// are appended to diags; the returned program may be partial if diags has
// errors.
func Parse(src string, diags *source.DiagList) *ast.Program {
	p := &parser{toks: lexer.Tokenize(src, diags), diags: diags}
	return p.parseProgram()
}

type parser struct {
	toks  []lexer.Token
	pos   int
	diags *source.DiagList
}

func (p *parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *parser) peek() lexer.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) next() lexer.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind, what string) lexer.Token {
	if p.at(k) {
		return p.next()
	}
	t := p.cur()
	p.diags.Errorf(t.Span, "expected %s in %s, found %s", k, what, p.describe(t))
	return lexer.Token{Kind: token.Illegal, Span: t.Span}
}

func (p *parser) describe(t lexer.Token) string {
	switch t.Kind {
	case token.EOF:
		return "end of file"
	case token.Ident, token.Int, token.Illegal:
		return strconv.Quote(t.Text)
	default:
		return strconv.Quote(t.Kind.String())
	}
}

func (p *parser) ident(what string) *ast.Ident {
	t := p.expect(token.Ident, what)
	if t.Kind != token.Ident {
		return &ast.Ident{Name: "_", Sp: t.Span}
	}
	return &ast.Ident{Name: t.Text, Sp: t.Span}
}

// syncTop skips tokens until a plausible top-level start or EOF.
func (p *parser) syncTop() {
	for {
		switch p.cur().Kind {
		case token.EOF, token.KwEvent, token.KwMachine, token.KwGhost, token.KwMain:
			return
		}
		p.next()
	}
}

// syncStmt skips to just after the next semicolon, or before a closing brace.
func (p *parser) syncStmt() {
	for {
		switch p.cur().Kind {
		case token.EOF, token.RBrace:
			return
		case token.Semi:
			p.next()
			return
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{Sp: p.cur().Span}
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwEvent:
			prog.Events = append(prog.Events, p.parseEventDecl())
		case token.KwMachine:
			prog.Machines = append(prog.Machines, p.parseMachineDecl(false))
		case token.KwGhost:
			start := p.next().Span
			if p.at(token.KwMachine) {
				m := p.parseMachineDecl(true)
				m.Sp.Start = start.Start
				prog.Machines = append(prog.Machines, m)
			} else {
				p.diags.Errorf(p.cur().Span, "expected 'machine' after 'ghost' at top level")
				p.syncTop()
			}
		case token.KwMain:
			m := p.parseMainDecl()
			if prog.Main != nil {
				p.diags.Errorf(m.Sp, "duplicate main declaration")
			} else {
				prog.Main = m
			}
		default:
			p.diags.Errorf(p.cur().Span, "expected declaration, found %s", p.describe(p.cur()))
			p.syncTop()
			if !p.at(token.EOF) && !p.at(token.KwEvent) && !p.at(token.KwMachine) &&
				!p.at(token.KwGhost) && !p.at(token.KwMain) {
				p.next()
			}
		}
	}
	if prog.Main == nil {
		p.diags.Errorf(p.cur().Span, "program has no main declaration")
	}
	return prog
}

// parseEventDecl parses: event Name [ "(" type ")" ] ";"
func (p *parser) parseEventDecl() *ast.EventDecl {
	start := p.expect(token.KwEvent, "event declaration").Span
	d := &ast.EventDecl{Name: p.ident("event declaration")}
	if p.accept(token.LParen) {
		d.Payload = p.parseType()
		p.expect(token.RParen, "event payload type")
	}
	end := p.expect(token.Semi, "event declaration").Span
	d.Sp = source.Span{Start: start.Start, End: end.End}
	return d
}

func (p *parser) parseType() *ast.TypeExpr {
	t := p.cur()
	var k ast.TypeKind
	switch t.Kind {
	case token.KwVoid:
		k = ast.TypeVoid
	case token.KwBool:
		k = ast.TypeBool
	case token.KwInt:
		k = ast.TypeInt
	case token.KwEvent:
		k = ast.TypeEvent
	case token.KwID:
		k = ast.TypeID
	default:
		p.diags.Errorf(t.Span, "expected type, found %s", p.describe(t))
		return &ast.TypeExpr{Kind: ast.TypeInt, Sp: t.Span}
	}
	p.next()
	return &ast.TypeExpr{Kind: k, Sp: t.Span}
}

// parseMachineDecl parses a machine body. The leading 'ghost' (if any) has
// already been consumed by the caller.
func (p *parser) parseMachineDecl(ghost bool) *ast.MachineDecl {
	start := p.expect(token.KwMachine, "machine declaration").Span
	m := &ast.MachineDecl{Ghost: ghost, Name: p.ident("machine declaration")}
	p.expect(token.LBrace, "machine body")
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwVar:
			m.Vars = append(m.Vars, p.parseVarDecl(false))
		case token.KwGhost:
			gs := p.next().Span
			if p.at(token.KwVar) {
				v := p.parseVarDecl(true)
				v.Sp.Start = gs.Start
				m.Vars = append(m.Vars, v)
			} else {
				p.diags.Errorf(p.cur().Span, "expected 'var' after 'ghost' in machine body")
				p.syncStmt()
			}
		case token.KwAction:
			m.Actions = append(m.Actions, p.parseActionDecl())
		case token.KwState:
			m.States = append(m.States, p.parseStateDecl())
		case token.KwForeign:
			m.Foreign = append(m.Foreign, p.parseForeignDecl())
		default:
			p.diags.Errorf(p.cur().Span, "expected machine member, found %s", p.describe(p.cur()))
			p.syncStmt()
		}
	}
	end := p.expect(token.RBrace, "machine body").Span
	m.Sp = source.Span{Start: start.Start, End: end.End}
	return m
}

// parseVarDecl parses: var Name ":" type ";" — the 'ghost' prefix, if any,
// was consumed by the caller.
func (p *parser) parseVarDecl(ghost bool) *ast.VarDecl {
	start := p.expect(token.KwVar, "variable declaration").Span
	v := &ast.VarDecl{Ghost: ghost, Name: p.ident("variable declaration")}
	p.expect(token.Colon, "variable declaration")
	v.Type = p.parseType()
	end := p.expect(token.Semi, "variable declaration").Span
	v.Sp = source.Span{Start: start.Start, End: end.End}
	return v
}

func (p *parser) parseActionDecl() *ast.ActionDecl {
	start := p.expect(token.KwAction, "action declaration").Span
	a := &ast.ActionDecl{Name: p.ident("action declaration")}
	a.Body = p.parseBlock()
	a.Sp = source.Span{Start: start.Start, End: a.Body.Sp.End}
	return a
}

// parseForeignDecl parses:
//
//	foreign Name "(" [type {"," type}] ")" [":" type] (";" | block)
func (p *parser) parseForeignDecl() *ast.ForeignDecl {
	start := p.expect(token.KwForeign, "foreign declaration").Span
	f := &ast.ForeignDecl{Name: p.ident("foreign declaration")}
	p.expect(token.LParen, "foreign declaration")
	if !p.at(token.RParen) {
		f.Params = append(f.Params, p.parseType())
		for p.accept(token.Comma) {
			f.Params = append(f.Params, p.parseType())
		}
	}
	p.expect(token.RParen, "foreign declaration")
	if p.accept(token.Colon) {
		f.Result = p.parseType()
	}
	var end source.Span
	if p.at(token.LBrace) {
		f.Model = p.parseBlock()
		end = f.Model.Sp
	} else {
		end = p.expect(token.Semi, "foreign declaration").Span
	}
	f.Sp = source.Span{Start: start.Start, End: end.End}
	return f
}

func (p *parser) parseStateDecl() *ast.StateDecl {
	start := p.expect(token.KwState, "state declaration").Span
	s := &ast.StateDecl{Name: p.ident("state declaration")}
	p.expect(token.LBrace, "state body")
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwEntry:
			p.next()
			b := p.parseBlock()
			if s.Entry != nil {
				p.diags.Errorf(b.Sp, "duplicate entry block in state %s", s.Name.Name)
			} else {
				s.Entry = b
			}
		case token.KwExit:
			p.next()
			b := p.parseBlock()
			if s.Exit != nil {
				p.diags.Errorf(b.Sp, "duplicate exit block in state %s", s.Name.Name)
			} else {
				s.Exit = b
			}
		case token.KwDefer:
			p.next()
			s.Deferred = append(s.Deferred, p.parseNameList("defer clause")...)
			p.expect(token.Semi, "defer clause")
		case token.KwPostpone:
			p.next()
			s.Postponed = append(s.Postponed, p.parseNameList("postpone clause")...)
			p.expect(token.Semi, "postpone clause")
		case token.KwOn:
			s.Trans = append(s.Trans, p.parseTransDecl())
		default:
			p.diags.Errorf(p.cur().Span, "expected state item, found %s", p.describe(p.cur()))
			p.syncStmt()
		}
	}
	end := p.expect(token.RBrace, "state body").Span
	s.Sp = source.Span{Start: start.Start, End: end.End}
	return s
}

func (p *parser) parseNameList(what string) []*ast.Ident {
	names := []*ast.Ident{p.ident(what)}
	for p.accept(token.Comma) {
		names = append(names, p.ident(what))
	}
	return names
}

// parseTransDecl parses: on E (goto S | push S | do A | ignore) ";"
func (p *parser) parseTransDecl() *ast.TransDecl {
	start := p.expect(token.KwOn, "transition").Span
	t := &ast.TransDecl{Event: p.ident("transition")}
	switch p.cur().Kind {
	case token.KwGoto:
		p.next()
		t.Kind = ast.TransStep
		t.Target = p.ident("goto transition")
	case token.KwPush:
		p.next()
		t.Kind = ast.TransCall
		t.Target = p.ident("push transition")
	case token.KwDo:
		p.next()
		t.Kind = ast.TransAction
		t.Target = p.ident("action binding")
	case token.KwIgnore:
		p.next()
		t.Kind = ast.TransIgnore
	default:
		p.diags.Errorf(p.cur().Span, "expected 'goto', 'push', 'do', or 'ignore' after event name, found %s", p.describe(p.cur()))
	}
	end := p.expect(token.Semi, "transition").Span
	t.Sp = source.Span{Start: start.Start, End: end.End}
	return t
}

// parseMainDecl parses: main Name "(" [inits] ")" ";"
func (p *parser) parseMainDecl() *ast.MainDecl {
	start := p.expect(token.KwMain, "main declaration").Span
	m := &ast.MainDecl{Machine: p.ident("main declaration")}
	p.expect(token.LParen, "main declaration")
	m.Inits = p.parseInitList()
	p.expect(token.RParen, "main declaration")
	end := p.expect(token.Semi, "main declaration").Span
	m.Sp = source.Span{Start: start.Start, End: end.End}
	return m
}

func (p *parser) parseInitList() []*ast.Init {
	var inits []*ast.Init
	if p.at(token.RParen) {
		return inits
	}
	inits = append(inits, p.parseInit())
	for p.accept(token.Comma) {
		inits = append(inits, p.parseInit())
	}
	return inits
}

func (p *parser) parseInit() *ast.Init {
	name := p.ident("initializer")
	p.expect(token.Assign, "initializer")
	e := p.parseExpr()
	sp := source.Span{Start: name.Sp.Start, End: e.Span().End}
	return &ast.Init{Name: name, Expr: e, Sp: sp}
}

// ---------------------------------------------------------------- statements

func (p *parser) parseBlock() *ast.Block {
	start := p.expect(token.LBrace, "block").Span
	b := &ast.Block{}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	end := p.expect(token.RBrace, "block").Span
	b.Sp = source.Span{Start: start.Start, End: end.End}
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.KwSkip:
		start := p.next().Span
		end := p.expect(token.Semi, "skip statement").Span
		return &ast.SkipStmt{Sp: source.Span{Start: start.Start, End: end.End}}
	case token.KwDelete:
		start := p.next().Span
		end := p.expect(token.Semi, "delete statement").Span
		return &ast.DeleteStmt{Sp: source.Span{Start: start.Start, End: end.End}}
	case token.KwLeave:
		start := p.next().Span
		end := p.expect(token.Semi, "leave statement").Span
		return &ast.LeaveStmt{Sp: source.Span{Start: start.Start, End: end.End}}
	case token.KwReturn:
		start := p.next().Span
		end := p.expect(token.Semi, "return statement").Span
		return &ast.ReturnStmt{Sp: source.Span{Start: start.Start, End: end.End}}
	case token.KwSend:
		return p.parseSendStmt()
	case token.KwRaise:
		return p.parseRaiseStmt()
	case token.KwAssert:
		start := p.next().Span
		e := p.parseExpr()
		end := p.expect(token.Semi, "assert statement").Span
		return &ast.AssertStmt{Expr: e, Sp: source.Span{Start: start.Start, End: end.End}}
	case token.KwIf:
		return p.parseIfStmt()
	case token.KwWhile:
		return p.parseWhileStmt()
	case token.KwCall:
		start := p.next().Span
		st := p.ident("call statement")
		end := p.expect(token.Semi, "call statement").Span
		return &ast.CallStmt{State: st, Sp: source.Span{Start: start.Start, End: end.End}}
	case token.Ident:
		return p.parseAssignOrCallStmt()
	case token.LBrace:
		return p.parseBlock()
	default:
		p.diags.Errorf(p.cur().Span, "expected statement, found %s", p.describe(p.cur()))
		sp := p.cur().Span
		p.syncStmt()
		return &ast.SkipStmt{Sp: sp}
	}
}

func (p *parser) parseSendStmt() ast.Stmt {
	start := p.expect(token.KwSend, "send statement").Span
	target := p.parseExpr()
	p.expect(token.Comma, "send statement")
	ev := p.ident("send statement")
	var payload ast.Expr
	if p.accept(token.Comma) {
		payload = p.parseExpr()
	}
	end := p.expect(token.Semi, "send statement").Span
	return &ast.SendStmt{Target: target, Event: ev, Payload: payload, Sp: source.Span{Start: start.Start, End: end.End}}
}

func (p *parser) parseRaiseStmt() ast.Stmt {
	start := p.expect(token.KwRaise, "raise statement").Span
	ev := p.ident("raise statement")
	var payload ast.Expr
	if p.accept(token.Comma) {
		payload = p.parseExpr()
	}
	end := p.expect(token.Semi, "raise statement").Span
	return &ast.RaiseStmt{Event: ev, Payload: payload, Sp: source.Span{Start: start.Start, End: end.End}}
}

func (p *parser) parseIfStmt() ast.Stmt {
	start := p.expect(token.KwIf, "if statement").Span
	cond := p.parseExpr()
	then := p.parseBlock()
	n := &ast.IfStmt{Cond: cond, Then: then}
	endSp := then.Sp
	if p.accept(token.KwElse) {
		if p.at(token.KwIf) {
			n.Else = p.parseIfStmt()
		} else {
			n.Else = p.parseBlock()
		}
		endSp = n.Else.Span()
	}
	n.Sp = source.Span{Start: start.Start, End: endSp.End}
	return n
}

func (p *parser) parseWhileStmt() ast.Stmt {
	start := p.expect(token.KwWhile, "while statement").Span
	cond := p.parseExpr()
	body := p.parseBlock()
	return &ast.WhileStmt{Cond: cond, Body: body, Sp: source.Span{Start: start.Start, End: body.Sp.End}}
}

// parseAssignOrCallStmt parses "x = expr;", "x = new M(...);", or "f(args);".
func (p *parser) parseAssignOrCallStmt() ast.Stmt {
	name := p.ident("statement")
	switch p.cur().Kind {
	case token.Assign:
		p.next()
		if p.at(token.KwNew) {
			p.next()
			mach := p.ident("new expression")
			p.expect(token.LParen, "new expression")
			inits := p.parseInitList()
			p.expect(token.RParen, "new expression")
			end := p.expect(token.Semi, "new statement").Span
			return &ast.NewStmt{Name: name, Machine: mach, Inits: inits, Sp: source.Span{Start: name.Sp.Start, End: end.End}}
		}
		e := p.parseExpr()
		end := p.expect(token.Semi, "assignment").Span
		return &ast.AssignStmt{Name: name, Expr: e, Sp: source.Span{Start: name.Sp.Start, End: end.End}}
	case token.LParen:
		call := p.parseCallArgs(name)
		end := p.expect(token.Semi, "call statement").Span
		return &ast.ExprStmt{Call: call, Sp: source.Span{Start: name.Sp.Start, End: end.End}}
	default:
		p.diags.Errorf(p.cur().Span, "expected '=' or '(' after identifier %q, found %s", name.Name, p.describe(p.cur()))
		p.syncStmt()
		return &ast.SkipStmt{Sp: name.Sp}
	}
}

func (p *parser) parseCallArgs(name *ast.Ident) *ast.CallExpr {
	p.expect(token.LParen, "call")
	c := &ast.CallExpr{Name: name}
	if !p.at(token.RParen) {
		c.Args = append(c.Args, p.parseExpr())
		for p.accept(token.Comma) {
			c.Args = append(c.Args, p.parseExpr())
		}
	}
	end := p.expect(token.RParen, "call").Span
	c.Sp = source.Span{Start: name.Sp.Start, End: end.End}
	return c
}

// --------------------------------------------------------------- expressions

// Binding powers, loosest first: || < && < == != < > <= >= < + - < * / %.
func binaryPrec(k token.Kind) (ast.BinaryOp, int, bool) {
	switch k {
	case token.OrOr:
		return ast.OpOr, 1, true
	case token.AndAnd:
		return ast.OpAnd, 2, true
	case token.Eq:
		return ast.OpEq, 3, true
	case token.Neq:
		return ast.OpNeq, 3, true
	case token.Lt:
		return ast.OpLt, 4, true
	case token.Le:
		return ast.OpLe, 4, true
	case token.Gt:
		return ast.OpGt, 4, true
	case token.Ge:
		return ast.OpGe, 4, true
	case token.Plus:
		return ast.OpAdd, 5, true
	case token.Minus:
		return ast.OpSub, 5, true
	case token.Star:
		return ast.OpMul, 6, true
	case token.Slash:
		return ast.OpDiv, 6, true
	case token.Percent:
		return ast.OpMod, 6, true
	}
	return 0, 0, false
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		op, prec, ok := binaryPrec(p.cur().Kind)
		if !ok || prec < minPrec {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.BinaryExpr{Op: op, X: lhs, Y: rhs, Sp: source.Span{Start: lhs.Span().Start, End: rhs.Span().End}}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.Not:
		start := p.next().Span
		x := p.parseUnary()
		return &ast.UnaryExpr{Op: ast.OpNot, X: x, Sp: source.Span{Start: start.Start, End: x.Span().End}}
	case token.Minus:
		start := p.next().Span
		x := p.parseUnary()
		return &ast.UnaryExpr{Op: ast.OpNeg, X: x, Sp: source.Span{Start: start.Start, End: x.Span().End}}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.Int:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.diags.Errorf(t.Span, "integer literal %q out of range", t.Text)
		}
		return &ast.Lit{Kind: ast.LitInt, Int: v, Sp: t.Span}
	case token.KwTrue:
		p.next()
		return &ast.Lit{Kind: ast.LitTrue, Sp: t.Span}
	case token.KwFalse:
		p.next()
		return &ast.Lit{Kind: ast.LitFalse, Sp: t.Span}
	case token.KwNull:
		p.next()
		return &ast.Lit{Kind: ast.LitNull, Sp: t.Span}
	case token.KwThis:
		p.next()
		return &ast.Lit{Kind: ast.LitThis, Sp: t.Span}
	case token.KwMsg:
		p.next()
		return &ast.Lit{Kind: ast.LitMsg, Sp: t.Span}
	case token.KwArg:
		p.next()
		return &ast.Lit{Kind: ast.LitArg, Sp: t.Span}
	case token.Star:
		p.next()
		return &ast.Lit{Kind: ast.LitChoose, Sp: t.Span}
	case token.Ident:
		p.next()
		name := &ast.Ident{Name: t.Text, Sp: t.Span}
		if p.at(token.LParen) {
			return p.parseCallArgs(name)
		}
		return &ast.NameExpr{Name: name, Sp: t.Span}
	case token.LParen:
		p.next()
		e := p.parseExpr()
		p.expect(token.RParen, "parenthesized expression")
		return e
	default:
		p.diags.Errorf(t.Span, "expected expression, found %s", p.describe(t))
		p.next()
		return &ast.Lit{Kind: ast.LitNull, Sp: t.Span}
	}
}

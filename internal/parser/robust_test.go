package parser_test

import (
	"math/rand"
	"strings"
	"testing"

	"pgo/internal/parser"
	"pgo/internal/source"
)

// The parser must never panic and must always terminate, whatever the
// input: random token soup, truncations of valid programs, and junk bytes.
func TestParserRobustness(t *testing.T) {
	fragments := []string{
		"machine", "event", "state", "entry", "exit", "on", "goto", "push",
		"do", "ignore", "defer", "postpone", "ghost", "var", "action",
		"foreign", "main", "send", "raise", "if", "else", "while", "assert",
		"new", "delete", "call", "return", "leave", "skip", "{", "}", "(",
		")", ";", ",", ":", "=", "==", "*", "+", "-", "/", "&&", "||", "!",
		"M", "E", "x", "S", "42", "null", "true", "this", "msg", "arg",
		"@", "\x00", "€", "0x", "9z",
	}
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(fragments[r.Intn(len(fragments))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("seed %d: parser panicked on %q: %v", seed, src, p)
				}
			}()
			var diags source.DiagList
			parser.Parse(src, &diags)
		}()
	}
}

// Truncations of a valid program never panic, and every proper truncation
// reports at least one diagnostic or parses (prefixes ending at declaration
// boundaries are legal programs except for the missing main).
func TestParserTruncations(t *testing.T) {
	full := `
event E(int);
ghost machine G {
  var x: id;
  state S {
    defer E;
    entry { x = new G(); send x, E, 1 + 2; }
    on E goto S;
  }
}
main G();
`
	for cut := 0; cut < len(full); cut += 7 {
		src := full[:cut]
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("cut %d: parser panicked on %q: %v", cut, src, p)
				}
			}()
			var diags source.DiagList
			parser.Parse(src, &diags)
		}()
	}
}

// Deeply nested expressions must not blow the stack unreasonably (the
// parser recurses, so bound the depth rather than stream arbitrary input).
func TestDeepNesting(t *testing.T) {
	depth := 2000
	expr := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	src := `
event E;
machine M {
  var x: int;
  state S { entry { x = ` + expr + `; } }
}
main M();
`
	var diags source.DiagList
	prog := parser.Parse(src, &diags)
	if diags.HasErrors() {
		t.Fatalf("deeply nested expression rejected:\n%s", diags.Errors()[0])
	}
	if prog.Main == nil {
		t.Fatal("program lost")
	}
}

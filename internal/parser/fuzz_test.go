package parser_test

import (
	"os"
	"path/filepath"
	"testing"

	"pgo/internal/parser"
	"pgo/internal/printer"
	"pgo/internal/psamples"
	"pgo/internal/source"
)

// FuzzParse feeds arbitrary text through the lexer and parser (which must
// never panic or hang) and, when the input parses cleanly, checks the
// pretty-printer round trip: the printed form must itself parse without
// errors, and printing the re-parse must reproduce it byte for byte. The
// shipped samples and the testdata corpus (the fault-sensitivity and
// parameterized sources that only exist as .p files) seed the fuzzer, so it
// starts from every syntactic construct the language has.
//
// CI runs this as a short smoke (go test -fuzz=FuzzParse -fuzztime=15s);
// without -fuzz it only replays the seed corpus as a regular test.
func FuzzParse(f *testing.F) {
	for _, s := range psamples.All() {
		f.Add(s.Source)
	}
	paths, err := filepath.Glob("../../testdata/*.p")
	if err != nil || len(paths) == 0 {
		f.Fatalf("globbing testdata seeds: %v (%d files)", err, len(paths))
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		var diags source.DiagList
		prog := parser.Parse(src, &diags)
		if prog == nil || diags.HasErrors() {
			return // rejected input: not panicking is the whole property
		}
		printed := printer.Print(prog)
		var rediags source.DiagList
		reparsed := parser.Parse(printed, &rediags)
		if reparsed == nil || rediags.HasErrors() {
			t.Fatalf("printed form of a clean parse fails to re-parse:\n--- input ---\n%s\n--- printed ---\n%s\n--- diags ---\n%s",
				src, printed, rediags.String())
		}
		reprinted := printer.Print(reparsed)
		if printed != reprinted {
			t.Fatalf("print/parse round trip is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, reprinted)
		}
	})
}

package parser_test

import (
	"strings"
	"testing"

	"pgo/internal/ast"
	"pgo/internal/parser"
	"pgo/internal/source"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	var diags source.DiagList
	prog := parser.Parse(src, &diags)
	if diags.HasErrors() {
		t.Fatalf("unexpected parse errors:\n%s", diags.String())
	}
	return prog
}

func parseErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	var diags source.DiagList
	parser.Parse(src, &diags)
	if !diags.HasErrors() {
		t.Fatalf("expected parse error containing %q, got none", wantSubstr)
	}
	if wantSubstr != "" && !strings.Contains(diags.String(), wantSubstr) {
		t.Fatalf("diagnostics do not mention %q:\n%s", wantSubstr, diags.String())
	}
}

const minimal = `
event E;
machine M {
  state S {
    entry { skip; }
  }
}
main M();
`

func TestMinimalProgram(t *testing.T) {
	prog := parseOK(t, minimal)
	if len(prog.Events) != 1 || prog.Events[0].Name.Name != "E" {
		t.Fatalf("events = %v", prog.Events)
	}
	if len(prog.Machines) != 1 || prog.Machines[0].Name.Name != "M" {
		t.Fatalf("machines = %v", prog.Machines)
	}
	if prog.Main == nil || prog.Main.Machine.Name != "M" {
		t.Fatalf("main = %v", prog.Main)
	}
}

func TestEventPayloads(t *testing.T) {
	prog := parseOK(t, `
event A(int);
event B(id);
event C(bool);
event D(event);
event E;
machine M { state S { entry { skip; } } }
main M();
`)
	wantKinds := []ast.TypeKind{ast.TypeInt, ast.TypeID, ast.TypeBool, ast.TypeEvent}
	for i, k := range wantKinds {
		if prog.Events[i].Payload == nil || prog.Events[i].Payload.Kind != k {
			t.Fatalf("event %d payload = %v, want %v", i, prog.Events[i].Payload, k)
		}
	}
	if prog.Events[4].Payload != nil {
		t.Fatal("event E should have no payload")
	}
}

func TestGhostMachineAndVars(t *testing.T) {
	prog := parseOK(t, `
event E;
ghost machine G {
  var x: id;
  state S { entry { skip; } }
}
machine M {
  ghost var g: id;
  var y: int;
  state S { entry { skip; } }
}
main G();
`)
	if !prog.Machines[0].Ghost {
		t.Fatal("G not marked ghost")
	}
	m := prog.Machines[1]
	if m.Ghost {
		t.Fatal("M wrongly ghost")
	}
	if !m.Vars[0].Ghost || m.Vars[1].Ghost {
		t.Fatalf("ghost flags: %v %v", m.Vars[0].Ghost, m.Vars[1].Ghost)
	}
}

func TestStateItems(t *testing.T) {
	prog := parseOK(t, `
event A; event B; event C; event D;
machine M {
  action Ignore { skip; }
  state S {
    defer A, B;
    postpone C;
    entry { skip; }
    exit { skip; }
    on A goto S;
    on B push T;
    on C do Ignore;
    on D ignore;
  }
  state T { entry { skip; } }
}
main M();
`)
	s := prog.Machines[0].States[0]
	if len(s.Deferred) != 2 || s.Deferred[0].Name != "A" || s.Deferred[1].Name != "B" {
		t.Fatalf("deferred = %v", s.Deferred)
	}
	if len(s.Postponed) != 1 || s.Postponed[0].Name != "C" {
		t.Fatalf("postponed = %v", s.Postponed)
	}
	if s.Entry == nil || s.Exit == nil {
		t.Fatal("missing entry/exit")
	}
	kinds := []ast.TransKind{ast.TransStep, ast.TransCall, ast.TransAction, ast.TransIgnore}
	for i, k := range kinds {
		if s.Trans[i].Kind != k {
			t.Fatalf("transition %d kind = %v, want %v", i, s.Trans[i].Kind, k)
		}
	}
}

func TestStatements(t *testing.T) {
	prog := parseOK(t, `
event E(int);
machine M {
  var x: int;
  var m: id;
  foreign f(int): int;
  state S {
    entry {
      skip;
      x = 1 + 2 * 3;
      m = new M(x = 4);
      send m, E, x;
      send m, E;
      raise E, 7;
      assert x > 0;
      if x == 1 { leave; } else { return; }
      while x < 10 { x = x + 1; }
      call S;
      f(3);
      x = f(x);
      delete;
    }
  }
}
main M();
`)
	entry := prog.Machines[0].States[0].Entry
	if n := len(entry.Stmts); n != 13 {
		t.Fatalf("statement count = %d, want 13", n)
	}
	// Precedence: 1 + 2*3 parses as 1 + (2*3).
	assign := entry.Stmts[1].(*ast.AssignStmt)
	bin := assign.Expr.(*ast.BinaryExpr)
	if bin.Op != ast.OpAdd {
		t.Fatalf("top operator = %v, want +", bin.Op)
	}
	if inner, ok := bin.Y.(*ast.BinaryExpr); !ok || inner.Op != ast.OpMul {
		t.Fatalf("right operand should be a product, got %T", bin.Y)
	}
}

func TestChooseVsMultiply(t *testing.T) {
	prog := parseOK(t, `
event E;
machine M {
  var x: int;
  var b: bool;
  state S {
    entry {
      b = *;
      x = x * x;
      if * { skip; }
    }
  }
}
main M();
`)
	entry := prog.Machines[0].States[0].Entry
	if _, ok := entry.Stmts[0].(*ast.AssignStmt).Expr.(*ast.Lit); !ok {
		t.Fatal("b = * should parse as a choose literal")
	}
	if bin, ok := entry.Stmts[1].(*ast.AssignStmt).Expr.(*ast.BinaryExpr); !ok || bin.Op != ast.OpMul {
		t.Fatal("x = x * x should parse as multiplication")
	}
	iff := entry.Stmts[2].(*ast.IfStmt)
	if lit, ok := iff.Cond.(*ast.Lit); !ok || lit.Kind != ast.LitChoose {
		t.Fatal("if * should parse the choose literal")
	}
}

func TestElseIfChains(t *testing.T) {
	prog := parseOK(t, `
event E;
machine M {
  var x: int;
  state S {
    entry {
      if x == 1 { skip; } else { if x == 2 { skip; } else { skip; } }
      if x == 1 { skip; } else if x == 2 { skip; }
    }
  }
}
main M();
`)
	entry := prog.Machines[0].States[0].Entry
	second := entry.Stmts[1].(*ast.IfStmt)
	if _, ok := second.Else.(*ast.IfStmt); !ok {
		t.Fatalf("else-if should nest an IfStmt, got %T", second.Else)
	}
}

func TestForeignDecls(t *testing.T) {
	prog := parseOK(t, `
event E;
machine M {
  foreign nop();
  foreign f(int, bool): id;
  foreign modeled(): void {
    skip;
  }
  state S { entry { skip; } }
}
main M();
`)
	fs := prog.Machines[0].Foreign
	if len(fs) != 3 {
		t.Fatalf("foreigns = %d", len(fs))
	}
	if len(fs[1].Params) != 2 || fs[1].Result == nil || fs[1].Result.Kind != ast.TypeID {
		t.Fatalf("f signature wrong: %+v", fs[1])
	}
	if fs[2].Model == nil {
		t.Fatal("modeled() lost its model body")
	}
}

func TestMainWithInits(t *testing.T) {
	prog := parseOK(t, `
event E;
machine M {
  var x: int;
  var b: bool;
  state S { entry { skip; } }
}
main M(x = 3, b = true);
`)
	if len(prog.Main.Inits) != 2 {
		t.Fatalf("inits = %d", len(prog.Main.Inits))
	}
}

func TestErrorMissingMain(t *testing.T) {
	parseErr(t, `event E; machine M { state S { entry { skip; } } }`, "no main")
}

func TestErrorDuplicateMain(t *testing.T) {
	parseErr(t, minimal+"\nmain M();", "duplicate main")
}

func TestErrorBadTransition(t *testing.T) {
	parseErr(t, `
event E;
machine M {
  state S {
    on E jump T;
  }
}
main M();
`, "expected 'goto'")
}

func TestErrorRecoveryContinues(t *testing.T) {
	var diags source.DiagList
	prog := parser.Parse(`
event E;
machine M {
  state S {
    entry { x = ; }
  }
  state T {
    entry { skip; }
  }
}
main M();
`, &diags)
	if !diags.HasErrors() {
		t.Fatal("expected an error")
	}
	// Recovery must still see state T and main.
	if len(prog.Machines[0].States) != 2 {
		t.Fatalf("recovered states = %d, want 2", len(prog.Machines[0].States))
	}
	if prog.Main == nil {
		t.Fatal("main lost during recovery")
	}
}

func TestErrorEOFInMachine(t *testing.T) {
	parseErr(t, `machine M { state S {`, "")
}

func TestCommentsEverywhere(t *testing.T) {
	parseOK(t, `
// leading
event E; // trailing
machine /* inline */ M {
  state S {
    entry { skip; /* before close */ }
  }
}
main M(); // done
`)
}

// Package verdict evaluates the corpus verdict matrix: it runs every
// verification mode pinned in psamples.Matrix() against the corresponding
// sample and diffs the outcomes cell by cell. It is the engine behind both
// `pverify -expect` (the CI verdict-matrix job) and the TestVerdictMatrix
// regression test, so the two enforcement paths cannot drift apart.
package verdict

import (
	"fmt"
	"sort"
	"strings"

	"pgo/internal/abstract"
	"pgo/internal/analysis"
	"pgo/internal/check"
	"pgo/internal/compile"
	"pgo/internal/ir"
	"pgo/internal/live"
	"pgo/internal/psamples"
)

// Columns names the matrix columns in display order. "plint" is the static
// analysis pass; the rest are dynamic verification modes.
var Columns = []string{"plain", "no-por", "chaos", "liveness", "abstract", "plint"}

// Cell is one evaluated matrix cell.
type Cell struct {
	Column string
	Want   psamples.ModeVerdict
	Got    psamples.ModeVerdict
	// Detail explains the got verdict: the first violation, the liveness
	// message, the abstract verdict, or the plint code set.
	Detail string
	OK     bool
}

// Row is the evaluated matrix row for one sample.
type Row struct {
	Sample string
	Shape  psamples.Shape
	Cells  []Cell
}

// OK reports whether every cell matched its expectation.
func (r Row) OK() bool {
	for _, c := range r.Cells {
		if !c.OK {
			return false
		}
	}
	return true
}

// Mismatches returns the cells that failed, formatted one per line.
func (r Row) Mismatches() []string {
	var out []string
	for _, c := range r.Cells {
		if !c.OK {
			out = append(out, fmt.Sprintf("%s/%s: want %s, got %s (%s)", r.Sample, c.Column, c.Want, c.Got, c.Detail))
		}
	}
	return out
}

// maxStates bounds every explicit-state column run: the corpus samples all
// finish well below this, so hitting the cap is itself a regression (the
// cell reports unsafe-by-truncation in Detail).
const maxStates = 2_000_000

// Evaluate runs every matrix column for one expectation row.
func Evaluate(e psamples.Expectation) (Row, error) {
	s, ok := psamples.ByName(e.Sample)
	if !ok {
		return Row{}, fmt.Errorf("no sample %q", e.Sample)
	}
	prog, diags, err := compile.Source(e.Sample, s.Source)
	if err != nil {
		return Row{}, fmt.Errorf("compile %s: %v\n%s", e.Sample, err, diags.String())
	}
	rep := analysis.Analyze(prog)
	row := Row{Sample: e.Sample, Shape: e.Shape}

	base := check.Options{
		Mode:             check.DelayBounded,
		Bound:            e.Bound,
		MaxStates:        maxStates,
		StopAtFirstError: true,
		POR:              true,
	}

	// plain: the default delay-bounded safety search, POR on.
	plain := base
	res, err := check.Explore(prog, plain)
	if err != nil {
		return Row{}, fmt.Errorf("%s plain: %v", e.Sample, err)
	}
	row.Cells = append(row.Cells, safetyCell("plain", e.Plain, e, res))

	// no-por: the same search unreduced; POR must preserve the verdict.
	noPOR := base
	noPOR.POR = false
	res, err = check.Explore(prog, noPOR)
	if err != nil {
		return Row{}, fmt.Errorf("%s no-por: %v", e.Sample, err)
	}
	row.Cells = append(row.Cells, safetyCell("no-por", e.NoPOR, e, res))

	// chaos: one drop fault along any schedule.
	chaos := base
	chaos.Faults = 1
	chaos.FaultKinds = check.DropFaults
	res, err = check.Explore(prog, chaos)
	if err != nil {
		return Row{}, fmt.Errorf("%s chaos: %v", e.Sample, err)
	}
	row.Cells = append(row.Cells, safetyCell("chaos", e.Chaos, e, res))

	// liveness: §3.2 checks over the fully explored graph (no early stop,
	// so the graph covers the whole bounded space).
	lv := base
	lv.CollectGraph = true
	lv.StopAtFirstError = false
	res, err = check.Explore(prog, lv)
	if err != nil {
		return Row{}, fmt.Errorf("%s liveness: %v", e.Sample, err)
	}
	vs := live.Check(prog, res.Graph, live.Options{})
	row.Cells = append(row.Cells, livenessCell(e, res, vs))

	// abstract: counter-abstraction coverability with concrete replay.
	ares := abstract.Analyze(prog, abstract.Options{Facts: rep, MaxMarkings: e.AbstractMarkings})
	acell, err := abstractCell(prog, e, ares)
	if err != nil {
		return Row{}, fmt.Errorf("%s abstract: %v", e.Sample, err)
	}
	row.Cells = append(row.Cells, acell)

	// plint: the static-analysis finding codes, as a pinned set.
	row.Cells = append(row.Cells, plintCell(e, rep.Findings))
	return row, nil
}

// EvaluateAll evaluates the whole matrix.
func EvaluateAll() ([]Row, error) {
	var rows []Row
	for _, e := range psamples.Matrix() {
		row, err := Evaluate(e)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func safetyCell(col string, want psamples.ModeVerdict, e psamples.Expectation, res *check.Result) Cell {
	c := Cell{Column: col, Want: want}
	switch {
	case res.Stats.Truncated:
		c.Got = psamples.VerdictUnsafe
		c.Detail = fmt.Sprintf("truncated at %d states", res.Stats.DistinctStates)
		c.OK = false
		return c
	case res.Errored():
		c.Got = psamples.VerdictUnsafe
		v := res.FirstViolation()
		c.Detail = v.Err.Error()
		c.OK = want == psamples.VerdictUnsafe &&
			(e.ViolationKind == "" || v.Err.Kind.String() == e.ViolationKind)
		if !c.OK && want == psamples.VerdictUnsafe {
			c.Detail = fmt.Sprintf("wrong kind: %s (want %s)", v.Err.Kind, e.ViolationKind)
		}
	default:
		c.Got = psamples.VerdictSafe
		c.Detail = fmt.Sprintf("%d states", res.Stats.DistinctStates)
		c.OK = want == psamples.VerdictSafe
	}
	return c
}

func livenessCell(e psamples.Expectation, res *check.Result, vs []live.Violation) Cell {
	c := Cell{Column: "liveness", Want: e.Liveness}
	switch {
	case e.LivenessOnly && res.Errored():
		// A liveness-only defect must stay invisible to the safety search
		// even on the graph-collecting run.
		c.Got = psamples.VerdictUnsafe
		c.Detail = fmt.Sprintf("unexpected safety violation: %v", res.FirstViolation().Err)
		c.OK = false
	case res.Errored() || len(vs) > 0:
		c.Got = psamples.VerdictUnsafe
		if len(vs) > 0 {
			c.Detail = vs[0].String()
		} else {
			c.Detail = res.FirstViolation().Err.Error()
		}
		c.OK = e.Liveness == psamples.VerdictUnsafe
	default:
		c.Got = psamples.VerdictSafe
		c.Detail = "no liveness violations"
		c.OK = e.Liveness == psamples.VerdictSafe
	}
	return c
}

// abstractCell mirrors pverify -abstract: an abstract counterexample only
// counts as unsafe once the concrete replay confirms it — the abstraction
// over-approximates, so an unconfirmed one is a warning, not a verdict.
func abstractCell(prog *ir.Program, e psamples.Expectation, ares *abstract.Result) (Cell, error) {
	c := Cell{Column: "abstract", Want: e.Abstract}
	switch ares.Verdict {
	case abstract.VerdictSafe:
		c.Got = psamples.VerdictSafe
		c.Detail = fmt.Sprintf("safe, %d markings", ares.Markings)
		c.OK = e.Abstract == psamples.VerdictSafe
	case abstract.VerdictCounterexample:
		sigs := make([]check.AbsSignature, len(ares.Errors))
		for i, ae := range ares.Errors {
			sigs[i] = check.AbsSignature{Kind: ae.Kind, Type: ae.Machine, Event: ae.Event}
		}
		hits, _, err := check.ReplaySignatures(prog, sigs, check.DefaultReplayOptions())
		if err != nil {
			return c, err
		}
		confirmed := 0
		for _, hit := range hits {
			if hit {
				confirmed++
			}
		}
		if confirmed > 0 {
			c.Got = psamples.VerdictUnsafe
			c.Detail = fmt.Sprintf("%d replay-confirmed counterexample(s)", confirmed)
			c.OK = e.Abstract == psamples.VerdictUnsafe
		} else {
			// Spurious-only counterexamples resolve to safe, but pin them
			// in the detail so a sample that starts tripping the
			// abstraction shows up in the diff.
			c.Got = psamples.VerdictSafe
			c.Detail = fmt.Sprintf("%d spurious counterexample(s)", len(ares.Errors))
			c.OK = e.Abstract == psamples.VerdictSafe
		}
	default:
		c.Got = psamples.VerdictUnsafe
		c.Detail = fmt.Sprintf("abstract verdict %s (%s)", ares.Verdict, ares.Unsupported)
		c.OK = false
	}
	return c, nil
}

// plintCell diffs the static-analysis finding codes against the pinned set
// and, for non-buggy samples, requires no error-severity findings.
func plintCell(e psamples.Expectation, findings []analysis.Finding) Cell {
	want := psamples.VerdictSafe // the plint column pins a code set, not a verdict
	c := Cell{Column: "plint", Want: want}
	codes := map[string]bool{}
	errors := 0
	for _, f := range findings {
		codes[f.Code] = true
		if f.Severity == analysis.SevError {
			errors++
		}
	}
	var got []string
	for code := range codes {
		got = append(got, code)
	}
	sort.Strings(got)
	wantCodes := append([]string(nil), e.PlintCodes...)
	sort.Strings(wantCodes)
	c.Detail = "codes " + strings.Join(got, ",")
	if len(got) == 0 {
		c.Detail = "no findings"
	}
	switch {
	case errors > 0:
		c.Got = psamples.VerdictUnsafe
		c.Detail = fmt.Sprintf("%d error-severity finding(s), %s", errors, c.Detail)
		c.OK = false
	case strings.Join(got, ",") != strings.Join(wantCodes, ","):
		c.Got = want
		c.Detail = fmt.Sprintf("codes %s, want %s", strings.Join(got, ","), strings.Join(wantCodes, ","))
		c.OK = false
	default:
		c.Got = want
		c.OK = true
	}
	return c
}

// Markdown renders evaluated rows as a GitHub-flavored table (the CI job
// appends this to $GITHUB_STEP_SUMMARY). Matching cells show the verdict;
// mismatches show want→got in bold.
func Markdown(rows []Row) string {
	var b strings.Builder
	b.WriteString("| sample | shape |")
	for _, col := range Columns {
		fmt.Fprintf(&b, " %s |", col)
	}
	b.WriteString("\n|---|---|")
	for range Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| `%s` | %s |", r.Sample, r.Shape)
		for _, c := range r.Cells {
			if c.OK {
				fmt.Fprintf(&b, " %s |", verdictIcon(c))
			} else {
				fmt.Fprintf(&b, " **want %s, got %s** |", c.Want, c.Got)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func verdictIcon(c Cell) string {
	if c.Column == "plint" {
		return "✅ " + c.Detail
	}
	if c.Got == psamples.VerdictSafe {
		return "✅ safe"
	}
	return "💥 unsafe"
}

// Text renders evaluated rows as an aligned plain-text table for terminals.
func Text(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-10s", "sample", "shape")
	for _, col := range Columns {
		fmt.Fprintf(&b, " %-10s", col)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-10s", r.Sample, r.Shape)
		for _, c := range r.Cells {
			mark := string(c.Got)
			if !c.OK {
				mark = fmt.Sprintf("%s!=%s", c.Got, c.Want)
			}
			fmt.Fprintf(&b, " %-10s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

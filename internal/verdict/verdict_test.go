package verdict

import (
	"strings"
	"testing"

	"pgo/internal/psamples"
)

// TestVerdictMatrix is the in-repo enforcement of the corpus verdict
// matrix: every cell pinned in psamples.Matrix() must evaluate to its
// expected verdict. The CI verdict-matrix job runs the same evaluation
// through `pverify -expect`.
func TestVerdictMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix evaluation in -short mode")
	}
	exps := psamples.Matrix()
	t.Parallel()
	for _, e := range exps {
		e := e
		t.Run(e.Sample, func(t *testing.T) {
			t.Parallel()
			row, err := Evaluate(e)
			if err != nil {
				t.Fatalf("evaluate: %v", err)
			}
			for _, m := range row.Mismatches() {
				t.Errorf("%s", m)
			}
		})
	}
}

// TestMatrixCoversAllShapes pins the corpus breadth claims: at least four
// distinct protocols, all declared state-space shapes present, and every
// matrix sample (a) registered and (b) paired with a buggy variant row.
func TestMatrixCoversAllShapes(t *testing.T) {
	exps := psamples.Matrix()
	shapes := map[psamples.Shape]bool{}
	protos := map[string]bool{}
	for _, e := range exps {
		s, ok := psamples.ByName(e.Sample)
		if !ok {
			t.Fatalf("matrix sample %s is not registered", e.Sample)
		}
		shapes[e.Shape] = true
		protos[strings.TrimSuffix(e.Sample, "-buggy")] = true
		if s.Buggy != strings.HasSuffix(e.Sample, "-buggy") {
			t.Errorf("%s: Buggy flag disagrees with -buggy naming", e.Sample)
		}
	}
	for _, shape := range []psamples.Shape{psamples.ShapeStar, psamples.ShapeDeep, psamples.ShapeServing, psamples.ShapeSymmetric} {
		if !shapes[shape] {
			t.Errorf("no matrix row with shape %s", shape)
		}
	}
	if len(protos) < 4 {
		t.Errorf("matrix covers %d protocols, want >= 4", len(protos))
	}
	for p := range protos {
		if _, ok := psamples.ExpectationFor(p); !ok {
			t.Errorf("protocol %s has no correct-variant row", p)
		}
		if _, ok := psamples.ExpectationFor(p + "-buggy"); !ok {
			t.Errorf("protocol %s has no buggy-variant row", p)
		}
	}
}

// TestRenderers sanity-checks the two table renderings on a synthetic row
// so CI summary output keeps its shape without re-running the matrix.
func TestRenderers(t *testing.T) {
	rows := []Row{{
		Sample: "demo", Shape: psamples.ShapeStar,
		Cells: []Cell{
			{Column: "plain", Want: psamples.VerdictSafe, Got: psamples.VerdictSafe, OK: true},
			{Column: "chaos", Want: psamples.VerdictSafe, Got: psamples.VerdictUnsafe, Detail: "boom"},
		},
	}}
	md := Markdown(rows)
	if !strings.Contains(md, "| `demo` | star |") || !strings.Contains(md, "**want safe, got unsafe**") {
		t.Errorf("markdown rendering lost content:\n%s", md)
	}
	txt := Text(rows)
	if !strings.Contains(txt, "unsafe!=safe") {
		t.Errorf("text rendering lost the mismatch marker:\n%s", txt)
	}
}
